//! DDR memory controller: FR-FCFS scheduling over banked DRAM with row
//! buffers and an open-page policy (Table I, "Main memory").
//!
//! The controller also implements two facilities the accounting techniques
//! depend on:
//!
//! * **Per-request interference counters** (consumed by DIEF, §IV-B): while
//!   a read is queued, service given to *other* cores' requests accrues as
//!   queuing interference; at issue time the difference between the actual
//!   row-buffer outcome and the outcome the core would have seen in private
//!   mode (tracked with per-core shadow row state) accrues as row
//!   interference.
//! * **A priority core** (used by the invasive ASM baseline, §II): requests
//!   from the priority core are scheduled ahead of all others, which is
//!   exactly the epoch mechanism whose backlog pathology Fig. 1c shows.

use crate::config::DramConfig;
use crate::types::{Addr, CoreId, Cycle, ReqId, BLOCK_BYTES};

/// A completed read, reported back to the hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct McCompletion {
    /// The read request that finished.
    pub req: ReqId,
    /// Cycle the data burst finished.
    pub finish: Cycle,
    /// Whether it was serviced as a row-buffer hit.
    pub row_hit: bool,
    /// Whether the per-core shadow (private-mode) row state predicted a hit.
    pub private_row_hit: bool,
    /// Queuing interference accrued (cycles, from other cores' service).
    pub intf_queue: u64,
    /// Row interference: actual minus private-mode access latency.
    pub intf_row: i64,
    /// Total queuing delay (arrival → issue).
    pub queue_delay: u64,
}

#[derive(Debug, Clone)]
struct QueuedRead {
    req: ReqId,
    core: CoreId,
    bank: usize,
    row: u64,
    arrived: Cycle,
    /// Cycles this read's *bank* was blocked by other cores' services.
    intf_bank: u64,
    /// Estimated data-bus delay from other cores' bursts while queued
    /// (one `bus_occ` per rival service). Rival bursts still pending in
    /// the bus backlog at issue time are also visible as push-out, so
    /// their `bus_occ` shares are netted out of the push-out charge.
    intf_bus: u64,
}

#[derive(Debug, Clone, Copy)]
struct QueuedWrite {
    core: CoreId,
    bank: usize,
    row: u64,
    #[allow(dead_code)]
    arrived: Cycle,
}

#[derive(Debug, Clone)]
struct Bank {
    open_row: Option<u64>,
    ready_at: Cycle,
}

/// A data-bus reservation whose burst slot has not yet drained.
#[derive(Debug, Clone, Copy)]
struct BusReservation {
    /// Cycle the owning service was issued.
    created: Cycle,
    /// Cycle its data burst leaves the bus.
    end: Cycle,
    /// Core the burst belongs to.
    core: CoreId,
}

#[derive(Debug, Clone)]
struct Channel {
    reads: Vec<QueuedRead>,
    writes: Vec<QueuedWrite>,
    banks: Vec<Bank>,
    data_bus_free_at: Cycle,
    /// Pending data-bus reservations in end order (the bus is reserved
    /// monotonically), pruned as bursts drain. Used at issue time to
    /// attribute the rival share of the bus backlog exactly; stays
    /// shallow (bounded by the backlog depth in bursts).
    bus_reservations: std::collections::VecDeque<BusReservation>,
    draining_writes: bool,
    /// Per-core count of queued entries (reads + writes), kept in sync
    /// with `reads`/`writes` so `queue_pressure` is O(1) — it runs every
    /// retry cycle of every request blocked on a full read queue.
    per_core_queued: Vec<u64>,
    /// Per-core shadow of the row each core last touched per bank: the row
    /// state the core would see running alone (open-page private mode).
    shadow_rows: Vec<Vec<Option<u64>>>,
    /// Ticks strictly before this cycle cannot issue (every queued
    /// entry's bank is busy): a scan-skipping hint, recomputed after a
    /// tick that issues nothing and reset on every enqueue. Skipped
    /// ticks are pure no-ops — the hysteresis flag is a fixed point of
    /// unchanged queues and bus reservations are pruned lazily before
    /// use — so the hint never changes behavior, only cost.
    idle_until: Cycle,
    /// Bumped whenever the queue contents change (enqueue or issue):
    /// lets callers cache queue-dependent decisions and revalidate in
    /// O(1).
    version: u64,
}

/// Per-core controller statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct McCoreStats {
    /// Reads serviced.
    pub reads: u64,
    /// Sum of read queue delays (cycles).
    pub queue_cycles: u64,
    /// Row-buffer hits among serviced reads.
    pub row_hits: u64,
}

/// The FR-FCFS DDR memory controller.
#[derive(Debug, Clone)]
pub struct MemoryController {
    cfg: DramConfig,
    channels: Vec<Channel>,
    priority_core: Option<CoreId>,
    /// Per-core statistics.
    pub core_stats: Vec<McCoreStats>,
    /// Total writes serviced (statistics).
    pub writes_serviced: u64,
}

impl MemoryController {
    /// Build a controller for `cores` cores from the DRAM configuration.
    pub fn new(cfg: &DramConfig, cores: usize) -> Self {
        let channel = Channel {
            reads: Vec::with_capacity(cfg.read_queue),
            writes: Vec::with_capacity(cfg.write_queue),
            banks: (0..cfg.banks).map(|_| Bank { open_row: None, ready_at: 0 }).collect(),
            data_bus_free_at: 0,
            bus_reservations: std::collections::VecDeque::new(),
            draining_writes: false,
            per_core_queued: vec![0; cores],
            shadow_rows: vec![vec![None; cores]; cfg.banks],
            idle_until: 0,
            version: 0,
        };
        MemoryController {
            cfg: cfg.clone(),
            channels: vec![channel; cfg.channels],
            priority_core: None,
            core_stats: vec![McCoreStats::default(); cores],
            writes_serviced: 0,
        }
    }

    /// Set (or clear) the core whose requests get absolute priority — the
    /// hook the invasive ASM accounting baseline uses.
    pub fn set_priority_core(&mut self, core: Option<CoreId>) {
        self.priority_core = core;
    }

    /// Currently prioritized core, if any.
    pub fn priority_core(&self) -> Option<CoreId> {
        self.priority_core
    }

    /// Map a block address to (channel, bank, row). Rows are contiguous
    /// within a bank so streaming accesses enjoy open-page hits.
    pub fn map(&self, block: Addr) -> (usize, usize, u64) {
        let row_blocks = self.cfg.row_bytes / BLOCK_BYTES;
        let row_id = block / BLOCK_BYTES / row_blocks;
        let channel = (row_id % self.cfg.channels as u64) as usize;
        let bank = ((row_id / self.cfg.channels as u64) % self.cfg.banks as u64) as usize;
        let row = row_id / (self.cfg.channels as u64 * self.cfg.banks as u64);
        (channel, bank, row)
    }

    /// Enqueue a read. Returns `false` when the read queue is full.
    pub fn enqueue_read(&mut self, req: ReqId, core: CoreId, block: Addr, now: Cycle) -> bool {
        let (ch, bank, row) = self.map(block);
        let chan = &mut self.channels[ch];
        if chan.reads.len() >= self.cfg.read_queue {
            return false;
        }
        chan.reads.push(QueuedRead {
            req,
            core,
            bank,
            row,
            arrived: now,
            intf_bank: 0,
            intf_bus: 0,
        });
        chan.per_core_queued[core.idx()] += 1;
        chan.idle_until = 0;
        chan.version += 1;
        true
    }

    /// Enqueue a write(back). Returns `false` when the write queue is full.
    pub fn enqueue_write(&mut self, core: CoreId, block: Addr, now: Cycle) -> bool {
        let (ch, bank, row) = self.map(block);
        let chan = &mut self.channels[ch];
        if chan.writes.len() >= self.cfg.write_queue {
            return false;
        }
        chan.writes.push(QueuedWrite { core, bank, row, arrived: now });
        chan.per_core_queued[core.idx()] += 1;
        chan.idle_until = 0;
        chan.version += 1;
        true
    }

    /// Number of queued reads across channels.
    pub fn queued_reads(&self) -> usize {
        self.channels.iter().map(|c| c.reads.len()).sum()
    }

    /// Whether the read queue of the channel serving `block` is full
    /// (an `enqueue_read` would be rejected).
    pub fn read_queue_full(&self, block: Addr) -> bool {
        let (ch, _, _) = self.map(block);
        self.channels[ch].reads.len() >= self.cfg.read_queue
    }

    /// Whether the write queue of the channel serving `block` is full
    /// (an `enqueue_write` would be rejected).
    pub fn write_queue_full(&self, block: Addr) -> bool {
        let (ch, _, _) = self.map(block);
        self.channels[ch].writes.len() >= self.cfg.write_queue
    }

    /// Queue pressure on the channel serving `block`: `(other, total)`
    /// occupancy where `other` counts entries (reads and writes) belonging
    /// to cores other than `core`. Used to attribute the wait of requests
    /// that cannot even *enter* a full read queue: that wait is
    /// interference in proportion to the rival cores' share of the queue
    /// (running alone the queue would hold only the core's own traffic).
    pub fn queue_pressure(&self, block: Addr, core: CoreId) -> (u64, u64) {
        let (ch, _, _) = self.map(block);
        let chan = &self.channels[ch];
        let total = (chan.reads.len() + chan.writes.len()) as u64;
        (total - chan.per_core_queued[core.idx()], total)
    }

    /// Sum of the per-channel queue-state versions: changes whenever any
    /// channel's queue contents change (enqueue or issue).
    pub fn queues_version(&self) -> u64 {
        self.channels.iter().map(|c| c.version).sum()
    }

    /// Number of queued writes across channels.
    pub fn queued_writes(&self) -> usize {
        self.channels.iter().map(|c| c.writes.len()).sum()
    }

    /// Earliest future cycle at which [`tick`](Self::tick) could issue a
    /// request, or `None` when all queues are empty.
    ///
    /// Between `now` and the returned cycle every tick is a pure no-op
    /// modulo lazily-equivalent bookkeeping: the write-drain hysteresis
    /// flag is a fixed point of unchanged queues, and bus reservations
    /// are pruned front-first by `end` before each issue decision, so
    /// skipping the intermediate ticks leaves the issue-time state
    /// bit-identical. This is the memory-controller leg of the
    /// cycle-skipping engine's activity bound.
    pub fn next_activity(&self, now: Cycle) -> Option<Cycle> {
        let mut next: Option<Cycle> = None;
        for chan in &self.channels {
            // The hysteresis flag as the next tick will compute it (with
            // unchanged queues one update already reaches the fixed
            // point, so this matches every intermediate tick).
            let draining = drain_decision(&self.cfg, chan);
            let earliest = if draining && !chan.writes.is_empty() {
                // While draining, only writes issue on this channel.
                chan.writes.iter().map(|w| chan.banks[w.bank].ready_at).min()
            } else {
                chan.reads.iter().map(|r| chan.banks[r.bank].ready_at).min()
            };
            if let Some(c) = earliest {
                let c = c.max(now);
                next = Some(next.map_or(c, |n: Cycle| n.min(c)));
            }
        }
        next
    }

    /// Advance one cycle: each channel may issue one request. Completed
    /// reads are appended to `out`.
    pub fn tick(&mut self, now: Cycle, out: &mut Vec<McCompletion>) {
        let cfg = self.cfg.clone();
        let priority = self.priority_core;
        for chan in &mut self.channels {
            // Known-idle stretch: every queued entry's bank is busy until
            // at least `idle_until` and nothing was enqueued since it was
            // computed, so the whole tick would be a no-op.
            if now < chan.idle_until {
                continue;
            }
            // Write-drain hysteresis: start draining above the threshold or
            // when there is no read work; stop when the queue empties.
            chan.draining_writes = drain_decision(&cfg, chan);

            // Drop bus reservations whose bursts have drained (kept here,
            // not on the read path, so write-only stretches stay bounded).
            while chan.bus_reservations.front().is_some_and(|b| b.end <= now) {
                chan.bus_reservations.pop_front();
            }

            if chan.draining_writes && !chan.writes.is_empty() {
                if let Some(idx) = pick_write(chan, now) {
                    let w = chan.writes.swap_remove(idx);
                    chan.per_core_queued[w.core.idx()] -= 1;
                    chan.version += 1;
                    let (latency, row_hit) = access_latency(&cfg, &chan.banks[w.bank], w.row);
                    let (finish, _) = service(&cfg, chan, w.bank, w.row, w.core, now, latency);
                    let _ = row_hit;
                    charge_queue_interference(&cfg, chan, w.core, w.bank, finish - now);
                    self.writes_serviced += 1;
                } else {
                    // All write banks busy: idle until the earliest frees.
                    chan.idle_until = chan
                        .writes
                        .iter()
                        .map(|w| chan.banks[w.bank].ready_at)
                        .min()
                        .unwrap_or(now)
                        .max(now + 1);
                }
                continue;
            }

            if let Some(idx) = pick_read(chan, now, priority) {
                let r = chan.reads.swap_remove(idx);
                chan.per_core_queued[r.core.idx()] -= 1;
                chan.version += 1;
                let bank = &chan.banks[r.bank];
                let (latency, row_hit) = access_latency(&cfg, bank, r.row);
                // Private-mode shadow row state for this core.
                let shadow = chan.shadow_rows[r.bank][r.core.idx()];
                let private_row_hit = shadow == Some(r.row);
                let private_latency = if private_row_hit {
                    cfg.row_hit_cycles()
                } else if shadow.is_none() {
                    cfg.row_closed_cycles()
                } else {
                    cfg.row_conflict_cycles()
                };
                // The bus backlog `r` is about to wait through is made of
                // pending reservation slots. Only the *rival* slots are
                // interference, and of those the ones created while `r`
                // was queued were already charged to `intf_bus`. Count
                // before `service` adds this read's own reservation.
                let (mut rival_pending, mut rival_charged) = (0u64, 0u64);
                for b in &chan.bus_reservations {
                    if b.core != r.core {
                        rival_pending += 1;
                        if b.created >= r.arrived {
                            rival_charged += 1;
                        }
                    }
                }
                let (finish, bus_pushout) =
                    service(&cfg, chan, r.bank, r.row, r.core, now, latency);
                chan.shadow_rows[r.bank][r.core.idx()] = Some(r.row);
                charge_queue_interference(&cfg, chan, r.core, r.bank, finish - now);

                let queue_delay = now.saturating_sub(r.arrived);
                // Bank blocking and queued-phase bus charges cover delay
                // suffered *before* issue (bounded by the queue residency);
                // the push-out covers the burst's wait *after* issue. Its
                // rival share is charged, minus the already-charged slots.
                let bus_occ = cfg.bus_occupancy_cycles();
                let pushout_extra = bus_pushout
                    .min(rival_pending * bus_occ)
                    .saturating_sub(rival_charged * bus_occ);
                let intf_queue = (r.intf_bank + r.intf_bus).min(queue_delay) + pushout_extra;
                let stats = &mut self.core_stats[r.core.idx()];
                stats.reads += 1;
                stats.queue_cycles += queue_delay;
                if row_hit {
                    stats.row_hits += 1;
                }
                out.push(McCompletion {
                    req: r.req,
                    finish,
                    row_hit,
                    private_row_hit,
                    intf_queue,
                    intf_row: latency as i64 - private_latency as i64,
                    queue_delay,
                });
            } else if !chan.reads.is_empty() {
                // All read banks busy: idle until the earliest frees.
                chan.idle_until = chan
                    .reads
                    .iter()
                    .map(|r| chan.banks[r.bank].ready_at)
                    .min()
                    .unwrap_or(now)
                    .max(now + 1);
            }
        }
    }
}

/// The write-drain hysteresis decision: the value `draining_writes`
/// takes on the next tick given the channel's current queues. Shared by
/// [`MemoryController::tick`] (which commits it) and
/// [`MemoryController::next_activity`] (which must predict it
/// identically — a divergence here silently breaks the cycle-skipping
/// engine's bit-exactness). With unchanged queues one update reaches the
/// fixed point: start draining at the threshold or when only writes are
/// queued; stop when the write queue empties; otherwise hold.
fn drain_decision(cfg: &DramConfig, chan: &Channel) -> bool {
    // The empty-queue stop condition wins over everything (including a
    // zero drain threshold, where `len >= threshold` holds vacuously).
    if chan.writes.is_empty() {
        false
    } else if chan.writes.len() >= cfg.write_drain_threshold || chan.reads.is_empty() {
        true
    } else {
        chan.draining_writes
    }
}

/// Latency (CPU cycles) and row-hit flag for accessing `row` given the
/// bank's current state.
fn access_latency(cfg: &DramConfig, bank: &Bank, row: u64) -> (u64, bool) {
    match bank.open_row {
        Some(open) if open == row => (cfg.row_hit_cycles(), true),
        Some(_) => (cfg.row_conflict_cycles(), false),
        None => (cfg.row_closed_cycles(), false),
    }
}

/// Commit a service decision: reserve the data bus, update bank state and
/// return `(finish cycle, total bus push-out)`. The push-out is the raw
/// wait behind the whole backlog; the caller splits it into the rival
/// share (interference) and the core's own self-induced bandwidth limit
/// using the channel's pending-reservation record.
fn service(
    cfg: &DramConfig,
    chan: &mut Channel,
    bank_idx: usize,
    row: u64,
    core: CoreId,
    now: Cycle,
    latency: u64,
) -> (Cycle, u64) {
    let bus_occ = cfg.bus_occupancy_cycles();
    let mut finish = now + latency;
    let mut pushout = 0;
    // The data burst must serialize on the channel's data bus.
    let data_start = finish - bus_occ;
    if data_start < chan.data_bus_free_at {
        let delayed = chan.data_bus_free_at + bus_occ;
        pushout = delayed - finish;
        finish = delayed;
    }
    chan.data_bus_free_at = finish;
    chan.bus_reservations.push_back(BusReservation { created: now, end: finish, core });
    let bank = &mut chan.banks[bank_idx];
    bank.open_row = Some(row);
    bank.ready_at = finish;
    (finish, pushout)
}

/// While request `r` of `core` is being serviced for `occupancy` cycles,
/// every queued read belonging to a *different* core is delayed — that
/// delay is interference (DIEF's memory-bus counter).
fn charge_queue_interference(
    cfg: &DramConfig,
    chan: &mut Channel,
    issuing_core: CoreId,
    issuing_bank: usize,
    occupancy: u64,
) {
    let bus_occ = cfg.bus_occupancy_cycles();
    for r in &mut chan.reads {
        if r.core != issuing_core {
            // Bus serialization delays everyone; same-bank requests are
            // additionally blocked for the full access.
            if r.bank == issuing_bank {
                r.intf_bank += occupancy;
            } else {
                r.intf_bus += bus_occ;
            }
        }
    }
}

/// FR-FCFS pick among queued reads whose bank is ready: priority core first,
/// then row hits, then oldest.
fn pick_read(chan: &Channel, now: Cycle, priority: Option<CoreId>) -> Option<usize> {
    let mut best: Option<(usize, (bool, bool, Cycle))> = None;
    for (i, r) in chan.reads.iter().enumerate() {
        let bank = &chan.banks[r.bank];
        if bank.ready_at > now {
            continue;
        }
        let is_priority = priority == Some(r.core);
        let row_hit = bank.open_row == Some(r.row);
        // Sort key: priority first, then row hit, then age (smaller better).
        let key = (!is_priority, !row_hit, r.arrived);
        match &best {
            Some((_, bk)) if *bk <= key => {}
            _ => best = Some((i, key)),
        }
    }
    best.map(|(i, _)| i)
}

/// FR-FCFS pick among queued writes whose bank is ready (row hits first).
fn pick_write(chan: &Channel, now: Cycle) -> Option<usize> {
    let mut best: Option<(usize, (bool, Cycle))> = None;
    for (i, w) in chan.writes.iter().enumerate() {
        let bank = &chan.banks[w.bank];
        if bank.ready_at > now {
            continue;
        }
        let row_hit = bank.open_row == Some(w.row);
        let key = (!row_hit, w.arrived);
        match &best {
            Some((_, bk)) if *bk <= key => {}
            _ => best = Some((i, key)),
        }
    }
    best.map(|(i, _)| i)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mc() -> MemoryController {
        MemoryController::new(&DramConfig::ddr2_800(1), 2)
    }

    fn run_until_complete(
        mc: &mut MemoryController,
        start: Cycle,
        horizon: Cycle,
    ) -> Vec<McCompletion> {
        let mut out = Vec::new();
        for t in start..horizon {
            mc.tick(t, &mut out);
        }
        out
    }

    #[test]
    fn single_read_closed_bank_latency() {
        let mut m = mc();
        assert!(m.enqueue_read(ReqId(1), CoreId(0), 0x0, 10));
        let done = run_until_complete(&mut m, 10, 400);
        assert_eq!(done.len(), 1);
        let c = &done[0];
        // Closed bank: tRCD+tCL+burst = (4+4+4)*10 = 120 cycles after issue.
        assert_eq!(c.finish, 10 + 120);
        assert!(!c.row_hit);
        assert!(!c.private_row_hit);
    }

    #[test]
    fn second_access_same_row_is_a_row_hit() {
        let mut m = mc();
        m.enqueue_read(ReqId(1), CoreId(0), 0x0, 0);
        m.enqueue_read(ReqId(2), CoreId(0), 0x40, 0);
        let done = run_until_complete(&mut m, 0, 1000);
        assert_eq!(done.len(), 2);
        let second = done.iter().find(|c| c.req == ReqId(2)).unwrap();
        assert!(second.row_hit, "same-row access must hit the open row");
        assert!(second.private_row_hit);
        assert_eq!(second.intf_row, 0);
    }

    #[test]
    fn row_conflict_from_other_core_counts_row_interference() {
        let mut m = mc();
        // Core 0 opens row 0; core 1 opens a different row in the same bank;
        // core 0 then returns to row 0 -> conflict in shared mode, but a row
        // hit in core 0's private shadow state.
        m.enqueue_read(ReqId(1), CoreId(0), 0x0, 0);
        let d1 = run_until_complete(&mut m, 0, 200);
        assert_eq!(d1.len(), 1);

        // Same bank, different row: banks*channels rows apart.
        let cfg = DramConfig::ddr2_800(1);
        let stride = cfg.row_bytes * cfg.banks as u64 * cfg.channels as u64;
        m.enqueue_read(ReqId(2), CoreId(1), stride, 200);
        let d2 = run_until_complete(&mut m, 200, 500);
        assert_eq!(d2.len(), 1);

        m.enqueue_read(ReqId(3), CoreId(0), 0x40, 500);
        let d3 = run_until_complete(&mut m, 500, 900);
        assert_eq!(d3.len(), 1);
        let c = &d3[0];
        assert!(!c.row_hit, "core 1 closed core 0's row");
        assert!(c.private_row_hit, "privately core 0 would have hit");
        // conflict(160) - hit(80) = 80 cycles of row interference.
        assert_eq!(c.intf_row, 80);
    }

    #[test]
    fn fr_fcfs_prefers_row_hits_over_older_conflicts() {
        let mut m = mc();
        // Open row 0 first.
        m.enqueue_read(ReqId(1), CoreId(0), 0x0, 0);
        let _ = run_until_complete(&mut m, 0, 200);
        let cfg = DramConfig::ddr2_800(1);
        let stride = cfg.row_bytes * cfg.banks as u64 * cfg.channels as u64;
        // Older request to a different row, newer request to the open row.
        m.enqueue_read(ReqId(2), CoreId(1), stride, 200);
        m.enqueue_read(ReqId(3), CoreId(0), 0x80, 201);
        let done = run_until_complete(&mut m, 202, 800);
        assert_eq!(done.len(), 2);
        assert_eq!(done[0].req, ReqId(3), "row hit scheduled before older conflict");
        assert_eq!(done[1].req, ReqId(2));
    }

    #[test]
    fn priority_core_preempts_row_hits() {
        let mut m = mc();
        m.enqueue_read(ReqId(1), CoreId(0), 0x0, 0);
        let _ = run_until_complete(&mut m, 0, 200);
        m.set_priority_core(Some(CoreId(1)));
        let cfg = DramConfig::ddr2_800(1);
        let stride = cfg.row_bytes * cfg.banks as u64 * cfg.channels as u64;
        m.enqueue_read(ReqId(2), CoreId(0), 0x40, 200); // row hit, non-priority
        m.enqueue_read(ReqId(3), CoreId(1), stride, 201); // conflict, priority
        let done = run_until_complete(&mut m, 202, 900);
        assert_eq!(done[0].req, ReqId(3), "ASM priority overrides FR-FCFS");
    }

    #[test]
    fn queue_interference_accrues_from_other_cores_only() {
        let mut m = mc();
        // Two same-bank reads from different cores arriving together: the
        // second serviced accrues interference; then two from the same core:
        // no interference between them.
        m.enqueue_read(ReqId(1), CoreId(0), 0x0, 0);
        m.enqueue_read(ReqId(2), CoreId(1), 0x40, 0);
        let done = run_until_complete(&mut m, 0, 600);
        let second = done.iter().find(|c| c.req == ReqId(2)).unwrap();
        assert!(second.intf_queue > 0, "cross-core queuing must count");

        let mut m2 = mc();
        m2.enqueue_read(ReqId(1), CoreId(0), 0x0, 0);
        m2.enqueue_read(ReqId(2), CoreId(0), 0x40, 0);
        let done2 = run_until_complete(&mut m2, 0, 600);
        let second2 = done2.iter().find(|c| c.req == ReqId(2)).unwrap();
        assert_eq!(second2.intf_queue, 0, "same-core queuing is not interference");
    }

    #[test]
    fn queue_pressure_tracks_per_core_occupancy() {
        let mut m = mc();
        m.enqueue_read(ReqId(1), CoreId(0), 0x0, 0);
        m.enqueue_read(ReqId(2), CoreId(1), 0x100000, 0);
        m.enqueue_write(CoreId(1), 0x200000, 0);
        // From core 0's perspective: two rival entries of three total.
        assert_eq!(m.queue_pressure(0x0, CoreId(0)), (2, 3));
        assert_eq!(m.queue_pressure(0x0, CoreId(1)), (1, 3));
        // Draining everything returns the occupancy to zero.
        let _ = run_until_complete(&mut m, 0, 2000);
        assert_eq!(m.queue_pressure(0x0, CoreId(0)), (0, 0));
    }

    #[test]
    fn pushout_behind_rival_burst_is_charged_at_issue() {
        let mut m = mc();
        let cfg = DramConfig::ddr2_800(1);
        let bank_stride = cfg.row_bytes * cfg.channels as u64;
        // Core 1's burst reserves the bus; core 0 arrives only after it
        // issued, so nothing is charged in-queue and the rival push-out
        // must be charged at issue time instead.
        m.enqueue_read(ReqId(1), CoreId(1), 0, 0);
        let mut out = run_until_complete(&mut m, 0, 5);
        m.enqueue_read(ReqId(2), CoreId(0), bank_stride, 5);
        out.extend(run_until_complete(&mut m, 5, 600));
        let c = out.iter().find(|c| c.req == ReqId(2)).unwrap();
        assert!(c.intf_queue > 0, "rival bus push-out must be charged");
        // Never more than one bus slot: the only rival burst is one burst.
        assert!(
            c.intf_queue <= cfg.bus_occupancy_cycles(),
            "charge {} exceeds the rival's single bus slot",
            c.intf_queue
        );
    }

    #[test]
    fn rival_bus_slot_is_never_double_charged() {
        let mut m = mc();
        let cfg = DramConfig::ddr2_800(1);
        let bank_stride = cfg.row_bytes * cfg.channels as u64;
        // The rival service happens while the read is queued (charged to
        // intf_bus); the same slot reappears as push-out at issue and must
        // be netted, keeping the total within one bus slot.
        m.enqueue_read(ReqId(1), CoreId(1), 0, 0);
        m.enqueue_read(ReqId(2), CoreId(0), bank_stride, 0);
        let done = run_until_complete(&mut m, 0, 600);
        let c = done.iter().find(|c| c.req == ReqId(2)).unwrap();
        assert!(
            c.intf_queue <= cfg.bus_occupancy_cycles(),
            "double-counted rival slot: {}",
            c.intf_queue
        );
    }

    #[test]
    fn bus_reservations_stay_bounded_under_write_only_traffic() {
        let cfg = DramConfig { write_drain_threshold: 1, ..DramConfig::ddr2_800(1) };
        let mut m = MemoryController::new(&cfg, 1);
        let mut out = Vec::new();
        for t in 0..20_000u64 {
            let _ = m.enqueue_write(CoreId(0), (t % 64) * 4096, t);
            m.tick(t, &mut out);
        }
        let pending: usize = m.channels.iter().map(|c| c.bus_reservations.len()).sum();
        assert!(pending < 64, "reservation record must stay shallow, saw {pending}");
    }

    #[test]
    fn write_drain_services_writes() {
        let cfg = DramConfig { write_drain_threshold: 2, ..DramConfig::ddr2_800(1) };
        let mut m = MemoryController::new(&cfg, 1);
        m.enqueue_write(CoreId(0), 0x0, 0);
        m.enqueue_write(CoreId(0), 0x40, 0);
        let _ = run_until_complete(&mut m, 0, 500);
        assert_eq!(m.writes_serviced, 2);
        assert_eq!(m.queued_writes(), 0);
    }

    #[test]
    fn zero_drain_threshold_with_empty_write_queue_still_issues_reads() {
        // threshold == 0 makes `len >= threshold` vacuously true; the
        // empty-write-queue stop condition must still win or the channel
        // would sit in drain mode forever and never issue a read.
        let cfg = DramConfig { write_drain_threshold: 0, ..DramConfig::ddr2_800(1) };
        let mut m = MemoryController::new(&cfg, 1);
        assert!(m.enqueue_read(ReqId(1), CoreId(0), 0x0, 0));
        let done = run_until_complete(&mut m, 0, 400);
        assert_eq!(done.len(), 1, "reads must issue when no writes are queued");
    }

    #[test]
    fn read_queue_full_rejects() {
        let cfg = DramConfig { read_queue: 1, ..DramConfig::ddr2_800(1) };
        let mut m = MemoryController::new(&cfg, 1);
        assert!(m.enqueue_read(ReqId(1), CoreId(0), 0x0, 0));
        assert!(!m.enqueue_read(ReqId(2), CoreId(0), 0x40, 0));
    }

    #[test]
    fn channel_mapping_keeps_rows_contiguous() {
        let m = MemoryController::new(&DramConfig::ddr2_800(2), 1);
        // Blocks within one 1KB row map to the same (channel, bank, row).
        let (c0, b0, r0) = m.map(0);
        let (c1, b1, r1) = m.map(1024 - 64);
        assert_eq!((c0, b0, r0), (c1, b1, r1));
        // The next row goes to the other channel.
        let (c2, _, _) = m.map(1024);
        assert_ne!(c0, c2);
    }

    #[test]
    fn bus_serializes_bursts_across_banks() {
        let mut m = mc();
        // Two reads to different banks, closed rows, same arrival: bank
        // access can overlap but data bursts must serialize.
        let cfg = DramConfig::ddr2_800(1);
        let bank_stride = cfg.row_bytes * cfg.channels as u64;
        m.enqueue_read(ReqId(1), CoreId(0), 0, 0);
        m.enqueue_read(ReqId(2), CoreId(0), bank_stride, 0);
        let done = run_until_complete(&mut m, 0, 600);
        assert_eq!(done.len(), 2);
        let f1 = done[0].finish.min(done[1].finish);
        let f2 = done[0].finish.max(done[1].finish);
        assert!(f2 >= f1 + cfg.bus_occupancy_cycles(), "bursts must not overlap");
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;

    #[test]
    fn ddr4_row_hit_is_faster_than_ddr2() {
        let mut m2 = MemoryController::new(&DramConfig::ddr2_800(1), 1);
        let mut m4 = MemoryController::new(&DramConfig::ddr4_2666(1), 1);
        for (m, _) in [(&mut m2, 0), (&mut m4, 1)] {
            m.enqueue_read(ReqId(1), CoreId(0), 0, 0);
            let mut out = Vec::new();
            for t in 0..400 {
                m.tick(t, &mut out);
            }
        }
        // Second access to the open row.
        let finish = |m: &mut MemoryController| {
            m.enqueue_read(ReqId(2), CoreId(0), 0x40, 1000);
            let mut out = Vec::new();
            for t in 1000..1400 {
                m.tick(t, &mut out);
            }
            out[0].finish - 1000
        };
        let f2 = finish(&mut m2);
        let f4 = finish(&mut m4);
        assert!(f4 < f2, "DDR4 row hit ({f4}) must beat DDR2 ({f2})");
    }

    #[test]
    fn clearing_priority_restores_frfcfs() {
        let mut m = MemoryController::new(&DramConfig::ddr2_800(1), 2);
        m.set_priority_core(Some(CoreId(1)));
        assert_eq!(m.priority_core(), Some(CoreId(1)));
        m.set_priority_core(None);
        assert_eq!(m.priority_core(), None);
    }

    #[test]
    fn write_drain_hysteresis_starts_at_threshold() {
        let cfg = DramConfig { write_drain_threshold: 4, ..DramConfig::ddr2_800(1) };
        let mut m = MemoryController::new(&cfg, 1);
        // Three writes + one read: reads win (below threshold).
        for i in 0..3u64 {
            m.enqueue_write(CoreId(0), i * 4096, 0);
        }
        m.enqueue_read(ReqId(9), CoreId(0), 0x100000, 0);
        let mut out = Vec::new();
        m.tick(0, &mut out);
        assert_eq!(out.len(), 1, "the read is issued first below the threshold");
        // A fourth write trips the drain; with reads pending the drain
        // still takes over at the threshold.
        m.enqueue_write(CoreId(0), 0x5000, 1);
        m.enqueue_read(ReqId(10), CoreId(0), 0x200000, 1);
        for t in 1..2000 {
            m.tick(t, &mut out);
        }
        assert_eq!(m.queued_writes(), 0, "drain must empty the write queue");
        assert_eq!(out.len(), 2, "both reads eventually complete");
    }

    #[test]
    fn per_core_stats_accumulate() {
        let mut m = MemoryController::new(&DramConfig::ddr2_800(1), 2);
        m.enqueue_read(ReqId(1), CoreId(0), 0, 0);
        m.enqueue_read(ReqId(2), CoreId(1), 0x100000, 0);
        let mut out = Vec::new();
        for t in 0..1000 {
            m.tick(t, &mut out);
        }
        assert_eq!(m.core_stats[0].reads, 1);
        assert_eq!(m.core_stats[1].reads, 1);
    }
}
