//! Set-associative cache tag array with LRU replacement and way
//! partitioning.
//!
//! Only tags are modelled (no data payloads): the simulator needs timing and
//! placement behaviour, not values. Way partitioning restricts which ways a
//! core may *allocate* into (replacement victims are chosen among the core's
//! quota), while lookups hit in any way — exactly how way-partitioned LLCs
//! behave (paper §V, UCP [8]).

use crate::config::CacheConfig;
use crate::types::{block_addr, Addr, CoreId};

/// An evicted dirty line that must be written back to the next level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Victim {
    /// Block address of the evicted line.
    pub block: Addr,
    /// Core that owned (allocated) the line.
    pub owner: CoreId,
}

/// Result of a tag lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessResult {
    /// The block is present; LRU state was updated.
    Hit,
    /// The block is absent.
    Miss,
}

#[derive(Debug, Clone)]
struct Line {
    tag: u64,
    valid: bool,
    dirty: bool,
    owner: CoreId,
    lru: u64,
}

impl Line {
    fn invalid() -> Self {
        Line { tag: 0, valid: false, dirty: false, owner: CoreId(0), lru: 0 }
    }
}

/// A set-associative, write-back, LRU cache tag array.
#[derive(Debug, Clone)]
pub struct Cache {
    sets: Vec<Vec<Line>>,
    ways: usize,
    set_mask: u64,
    /// Optional per-core allocation masks (bit w set = way w allowed).
    partition: Option<Vec<u64>>,
    tick: u64,
    /// Demand accesses observed (for statistics).
    pub accesses: u64,
    /// Demand misses observed.
    pub misses: u64,
}

impl Cache {
    /// Build a cache from its configuration.
    pub fn new(cfg: &CacheConfig) -> Self {
        let sets = cfg.sets();
        Cache {
            sets: vec![vec![Line::invalid(); cfg.ways]; sets],
            ways: cfg.ways,
            set_mask: sets as u64 - 1,
            partition: None,
            tick: 0,
            accesses: 0,
            misses: 0,
        }
    }

    /// Build a cache with an explicit set count (used for banked LLCs where
    /// each bank holds `total_sets / banks` sets).
    pub fn with_sets(sets: usize, ways: usize) -> Self {
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        Cache {
            sets: vec![vec![Line::invalid(); ways]; sets],
            ways,
            set_mask: sets as u64 - 1,
            partition: None,
            tick: 0,
            accesses: 0,
            misses: 0,
        }
    }

    /// Number of sets.
    pub fn sets(&self) -> usize {
        self.sets.len()
    }

    /// Associativity.
    pub fn ways(&self) -> usize {
        self.ways
    }

    /// Set index for a block address (banked callers pre-shift the address).
    #[inline]
    pub fn set_index(&self, block: Addr) -> u64 {
        (block / crate::types::BLOCK_BYTES) & self.set_mask
    }

    /// Install per-core way-allocation masks. `masks[c]` is a bitmask of the
    /// ways core `c` may allocate into.
    ///
    /// # Panics
    /// Panics if any mask is empty or references ways beyond associativity.
    pub fn set_partition(&mut self, masks: Vec<u64>) {
        let all = if self.ways >= 64 { u64::MAX } else { (1u64 << self.ways) - 1 };
        for (c, m) in masks.iter().enumerate() {
            assert!(*m != 0, "core {c} was given an empty way mask");
            assert_eq!(*m & !all, 0, "core {c} mask references nonexistent ways");
        }
        self.partition = Some(masks);
    }

    /// Remove way partitioning (plain shared LRU).
    pub fn clear_partition(&mut self) {
        self.partition = None;
    }

    /// Probe for `block`; on a hit, update LRU and (for writes) the dirty
    /// bit. Counts toward access/miss statistics.
    pub fn access(&mut self, block: Addr, write: bool) -> AccessResult {
        self.accesses += 1;
        self.tick += 1;
        let tag = block / crate::types::BLOCK_BYTES;
        let set = (tag & self.set_mask) as usize;
        let tick = self.tick;
        for line in &mut self.sets[set] {
            if line.valid && line.tag == tag {
                line.lru = tick;
                if write {
                    line.dirty = true;
                }
                return AccessResult::Hit;
            }
        }
        self.misses += 1;
        AccessResult::Miss
    }

    /// Replay `n` probes that are known to miss, in bulk: each counts one
    /// access and one miss and advances the LRU clock by one, exactly as
    /// `n` calls of [`access`](Cache::access) on an absent block would —
    /// a missing probe touches no line state. Used by the cycle-skipping
    /// engine to account an L1-blocked load's per-cycle retry probes
    /// without executing them.
    pub(crate) fn replay_miss_probes(&mut self, n: u64) {
        self.accesses += n;
        self.misses += n;
        self.tick += n;
    }

    /// Probe without updating LRU or statistics (used by tests and probes).
    pub fn peek(&self, block: Addr) -> bool {
        let tag = block / crate::types::BLOCK_BYTES;
        let set = (tag & self.set_mask) as usize;
        self.sets[set].iter().any(|l| l.valid && l.tag == tag)
    }

    /// Fill `block` into the cache on behalf of `core`, evicting a victim if
    /// necessary. Returns the dirty victim that must be written back, if any.
    ///
    /// The victim is chosen among invalid lines first, then the LRU line of
    /// the ways `core` is allowed to allocate into (all ways when
    /// unpartitioned).
    pub fn fill(&mut self, block: Addr, core: CoreId, dirty: bool) -> Option<Victim> {
        self.tick += 1;
        let tag = block / crate::types::BLOCK_BYTES;
        let set_idx = (tag & self.set_mask) as usize;
        let tick = self.tick;
        let allowed: u64 = match &self.partition {
            Some(masks) => masks.get(core.idx()).copied().unwrap_or(u64::MAX),
            None => u64::MAX,
        };

        // Already present (e.g. a racing fill): refresh.
        if let Some(line) = self.sets[set_idx].iter_mut().find(|l| l.valid && l.tag == tag) {
            line.lru = tick;
            line.dirty |= dirty;
            line.owner = core;
            return None;
        }

        let set = &mut self.sets[set_idx];
        // Victim selection stays inside the core's way quota: an invalid
        // way within the quota first, else the LRU way within the quota.
        let in_quota = |w: usize| allowed & (1u64 << (w as u64 & 63)) != 0;
        let slot = set
            .iter()
            .enumerate()
            .position(|(w, l)| in_quota(w) && !l.valid)
            .or_else(|| {
                set.iter()
                    .enumerate()
                    .filter(|(w, _)| in_quota(*w))
                    .min_by_key(|(_, l)| l.lru)
                    .map(|(w, _)| w)
            })
            .expect("a victim way must exist");

        let line = &mut set[slot];
        let victim = if line.valid && line.dirty {
            Some(Victim { block: line.tag * crate::types::BLOCK_BYTES, owner: line.owner })
        } else {
            None
        };
        *line = Line { tag, valid: true, dirty, owner: core, lru: tick };
        victim
    }

    /// Mark `block` dirty if present (writeback landing on a hit).
    /// Returns whether the block was present.
    pub fn mark_dirty(&mut self, block: Addr) -> bool {
        let tag = block / crate::types::BLOCK_BYTES;
        let set = (tag & self.set_mask) as usize;
        for line in &mut self.sets[set] {
            if line.valid && line.tag == tag {
                line.dirty = true;
                return true;
            }
        }
        false
    }

    /// Invalidate `block` if present, returning whether it was dirty.
    pub fn invalidate(&mut self, block: Addr) -> Option<bool> {
        let tag = block / crate::types::BLOCK_BYTES;
        let set = (tag & self.set_mask) as usize;
        for line in &mut self.sets[set] {
            if line.valid && line.tag == tag {
                line.valid = false;
                return Some(line.dirty);
            }
        }
        None
    }

    /// Miss ratio over the cache's lifetime (0 when never accessed).
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }
}

/// Validate a block address is block-aligned in debug builds.
#[allow(dead_code)]
fn debug_assert_aligned(addr: Addr) {
    debug_assert_eq!(addr, block_addr(addr), "address {addr:#x} is not block-aligned");
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cache(ways: usize, sets: usize) -> Cache {
        Cache::with_sets(sets, ways)
    }

    #[test]
    fn miss_then_fill_then_hit() {
        let mut c = small_cache(2, 4);
        assert_eq!(c.access(0x1000, false), AccessResult::Miss);
        c.fill(0x1000, CoreId(0), false);
        assert_eq!(c.access(0x1000, false), AccessResult::Hit);
        assert_eq!(c.accesses, 2);
        assert_eq!(c.misses, 1);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        // 2-way, 1 set: fill A, B, touch A, fill C -> B evicted.
        let mut c = small_cache(2, 1);
        c.fill(0x000, CoreId(0), false);
        c.fill(0x040, CoreId(0), false);
        assert_eq!(c.access(0x000, false), AccessResult::Hit);
        c.fill(0x080, CoreId(0), false);
        assert!(c.peek(0x000), "recently used line must survive");
        assert!(!c.peek(0x040), "LRU line must be evicted");
        assert!(c.peek(0x080));
    }

    #[test]
    fn dirty_victim_is_returned_for_writeback() {
        let mut c = small_cache(1, 1);
        c.fill(0x000, CoreId(1), true);
        let v = c.fill(0x040, CoreId(0), false).expect("dirty victim");
        assert_eq!(v.block, 0x000);
        assert_eq!(v.owner, CoreId(1));
    }

    #[test]
    fn clean_victim_produces_no_writeback() {
        let mut c = small_cache(1, 1);
        c.fill(0x000, CoreId(0), false);
        assert!(c.fill(0x040, CoreId(0), false).is_none());
    }

    #[test]
    fn partition_restricts_allocation_not_hits() {
        // 4-way, 1 set; core0 gets ways {0,1}, core1 gets ways {2,3}.
        let mut c = small_cache(4, 1);
        c.set_partition(vec![0b0011, 0b1100]);
        // Core 0 fills three distinct blocks; only 2 ways -> one evicted.
        c.fill(0x000, CoreId(0), false);
        c.fill(0x040, CoreId(0), false);
        c.fill(0x080, CoreId(0), false);
        let present = [0x000u64, 0x040, 0x080].iter().filter(|&&b| c.peek(b)).count();
        assert_eq!(present, 2, "core 0 can hold at most its 2 ways");
        // Core 1's fills must not evict core 0's remaining lines.
        c.fill(0x0c0, CoreId(1), false);
        c.fill(0x100, CoreId(1), false);
        let core0_present = [0x000u64, 0x040, 0x080].iter().filter(|&&b| c.peek(b)).count();
        assert_eq!(core0_present, 2, "core 1 must not evict core 0's quota");
        // Hits are allowed in any way: core 0 hitting core 1's line is fine.
        assert_eq!(c.access(0x0c0, false), AccessResult::Hit);
    }

    #[test]
    #[should_panic(expected = "empty way mask")]
    fn empty_partition_mask_rejected() {
        let mut c = small_cache(4, 1);
        c.set_partition(vec![0b0011, 0]);
    }

    #[test]
    fn mark_dirty_and_invalidate() {
        let mut c = small_cache(2, 2);
        c.fill(0x000, CoreId(0), false);
        assert!(c.mark_dirty(0x000));
        assert_eq!(c.invalidate(0x000), Some(true));
        assert_eq!(c.invalidate(0x000), None);
        assert!(!c.mark_dirty(0x040));
    }

    #[test]
    fn set_indexing_distributes_blocks() {
        let c = small_cache(2, 4);
        assert_eq!(c.set_index(0x000), 0);
        assert_eq!(c.set_index(0x040), 1);
        assert_eq!(c.set_index(0x080), 2);
        assert_eq!(c.set_index(0x0c0), 3);
        assert_eq!(c.set_index(0x100), 0);
    }

    #[test]
    fn refill_of_present_block_refreshes_without_victim() {
        let mut c = small_cache(1, 1);
        c.fill(0x000, CoreId(0), false);
        assert!(c.fill(0x000, CoreId(1), true).is_none());
        // Ownership and dirtiness transferred.
        let v = c.fill(0x040, CoreId(0), false).expect("dirty victim");
        assert_eq!(v.owner, CoreId(1));
    }

    #[test]
    fn miss_ratio_reports_fraction() {
        let mut c = small_cache(2, 2);
        assert_eq!(c.miss_ratio(), 0.0);
        c.access(0x000, false); // miss
        c.fill(0x000, CoreId(0), false);
        c.access(0x000, false); // hit
        assert!((c.miss_ratio() - 0.5).abs() < 1e-12);
    }
}
