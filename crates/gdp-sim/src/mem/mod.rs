//! Memory hierarchy: caches, MSHRs, ring interconnect, DRAM controller and
//! the wiring between them.
//!
//! The hierarchy models the CMP of the paper's Table I: per-core L1 data and
//! L2 caches, a shared, banked, way-partitionable L3 (LLC) reached over a
//! ring interconnect, and one or more DDR channels governed by an FR-FCFS
//! memory controller with banks, row buffers and an open-page policy.
//!
//! Requests progress through explicit pipeline stages with an event wheel;
//! the memory controller is ticked every cycle because FR-FCFS arbitration
//! is a per-cycle decision.

pub mod cache;
pub mod dram;
pub mod hierarchy;
pub mod mshr;
pub mod request;
pub mod ring;

pub use cache::{AccessResult, Cache, Victim};
pub use dram::{McCompletion, MemoryController};
pub use hierarchy::{AccessOutcome, CompletedAccess, MemorySystem};
pub use mshr::{MshrAlloc, MshrFile};
pub use request::{Interference, MemRequest};
pub use ring::{Ring, RingKind, SendOutcome};
