//! # gdp-sim — cycle-level chip-multiprocessor simulator substrate
//!
//! This crate implements the simulation substrate used by the GDP
//! reproduction: a cycle-accurate model of a chip multiprocessor (CMP) with
//! out-of-order cores, two levels of private caches, a shared banked
//! last-level cache (LLC) with way-partitioning support, a ring
//! interconnect, and a DDR2/DDR4 memory controller with FR-FCFS scheduling,
//! banks and row buffers. Time is advanced by an event-driven,
//! quiescence-aware engine ([`System::advance`]) that skips dead cycles in
//! O(1); the fixed-increment [`System::step`] engine is retained as the
//! bit-exact reference oracle.
//!
//! The architecture mirrors Table I of the paper (Jahre & Eeckhout,
//! HPCA 2018). It executes *synthetic instruction streams* (see the
//! `gdp-workloads` crate) which carry explicit register dependencies and
//! pre-generated memory addresses, so the dataflow structure observed by
//! accounting hardware is a genuine property of the executed program.
//!
//! ## Quick example
//!
//! ```
//! use gdp_sim::{System, SimConfig};
//! use gdp_sim::core::{Instr, InstrStream};
//!
//! // Two tiny programs: streams of independent loads.
//! let prog: Vec<Instr> = (0..256)
//!     .map(|i| Instr::load(0x1000 + i * 64, &[]))
//!     .collect();
//! let cfg = SimConfig::scaled(2);
//! let mut sys = System::new(cfg, vec![
//!     InstrStream::cyclic(prog.clone()),
//!     InstrStream::cyclic(prog),
//! ]);
//! sys.run_cycles(10_000);
//! assert!(sys.core_stats(0).committed_instrs > 0);
//! ```

pub mod config;
pub mod core;
pub mod mem;
pub mod probe;
pub mod stats;
pub mod system;
pub mod types;

pub use config::{CacheConfig, CoreConfig, DramConfig, DramKind, RingConfig, SimConfig};
pub use probe::{ProbeEvent, StallCause};
pub use stats::{CoreStats, MemStats};
pub use system::{EngineCounters, System};
pub use types::{Addr, CoreId, Cycle, ReqId};
