//! The top-level simulated system: N cores plus the shared memory
//! hierarchy, advanced one cycle at a time.
//!
//! * **Shared mode** — one benchmark per core, all cores active.
//! * **Private mode** — a single benchmark on core 0 with every other core
//!   idle (the paper's off-line configuration used as accounting ground
//!   truth). Build it by passing a single-element stream vector against a
//!   multi-core configuration.

use crate::config::SimConfig;
use crate::core::pipeline::Core;
use crate::core::InstrStream;
use crate::mem::MemorySystem;
use crate::probe::ProbeEvent;
use crate::stats::{CoreStats, Snapshot};
use crate::types::{CoreId, Cycle};

/// A complete simulated CMP.
#[derive(Debug)]
pub struct System {
    cfg: SimConfig,
    cores: Vec<Core>,
    mem: MemorySystem,
    now: Cycle,
    probes: Vec<ProbeEvent>,
}

impl System {
    /// Build a system running one [`InstrStream`] per active core. Streams
    /// may number fewer than `cfg.cores`: remaining cores stay idle (this
    /// is how private-mode runs are configured).
    ///
    /// # Panics
    /// Panics if more streams than cores are supplied.
    pub fn new(cfg: SimConfig, streams: Vec<InstrStream>) -> Self {
        assert!(
            streams.len() <= cfg.cores,
            "{} streams but only {} cores",
            streams.len(),
            cfg.cores
        );
        let cores = streams
            .into_iter()
            .enumerate()
            .map(|(i, s)| Core::new(CoreId(i as u8), &cfg.core, s))
            .collect();
        let mem = MemorySystem::new(&cfg);
        System { cfg, cores, mem, now: 0, probes: Vec::new() }
    }

    /// The configuration this system was built with.
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// Current cycle.
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Number of active cores.
    pub fn active_cores(&self) -> usize {
        self.cores.len()
    }

    /// Statistics of core `idx`.
    ///
    /// # Panics
    /// Panics if `idx` is not an active core.
    pub fn core_stats(&self, idx: usize) -> &CoreStats {
        self.cores[idx].stats()
    }

    /// Snapshot of all active cores' statistics at the current cycle.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot { cycle: self.now, cores: self.cores.iter().map(|c| *c.stats()).collect() }
    }

    /// Mutable access to the memory system (partitioning, ASM priority).
    pub fn mem(&mut self) -> &mut MemorySystem {
        &mut self.mem
    }

    /// Immutable access to the memory system.
    pub fn mem_ref(&self) -> &MemorySystem {
        &self.mem
    }

    /// Install (or clear) LLC way-partition masks.
    pub fn set_llc_partition(&mut self, masks: Option<Vec<u64>>) {
        self.mem.set_llc_partition(masks);
    }

    /// Take all probe events accumulated since the last drain.
    ///
    /// The order is deterministic for a given configuration and workload:
    /// each cycle the memory system appends its events before the cores
    /// (in core order), and the simulation itself is single-threaded and
    /// free of ambient randomness. `gdp-trace` relies on this contract —
    /// a recorded stream replayed through the same estimators reproduces
    /// the live estimates bit-for-bit precisely because two identical
    /// runs drain identical event sequences.
    pub fn drain_probes(&mut self) -> Vec<ProbeEvent> {
        std::mem::take(&mut self.probes)
    }

    /// Advance the whole system by one cycle.
    pub fn step(&mut self) {
        let now = self.now;
        self.mem.tick(now, &mut self.probes);
        for done in self.mem.take_completions() {
            self.cores[done.core.idx()].record_mem_completion(&done);
        }
        for core in &mut self.cores {
            core.tick(now, &mut self.mem, &mut self.probes);
        }
        self.now += 1;
    }

    /// Run for `n` cycles.
    pub fn run_cycles(&mut self, n: u64) {
        for _ in 0..n {
            self.step();
        }
    }

    /// Run until every active core has committed at least `target`
    /// instructions, or `max_cycles` elapse. Returns the cycle reached.
    pub fn run_until_committed(&mut self, target: u64, max_cycles: u64) -> Cycle {
        let deadline = self.now + max_cycles;
        while self.now < deadline && self.cores.iter().any(|c| c.committed() < target) {
            self.step();
        }
        self.now
    }

    /// Run until core `idx` has committed at least `target` instructions,
    /// or `max_cycles` elapse. Returns the cycle reached.
    pub fn run_core_until_committed(&mut self, idx: usize, target: u64, max_cycles: u64) -> Cycle {
        let deadline = self.now + max_cycles;
        while self.now < deadline && self.cores[idx].committed() < target {
            self.step();
        }
        self.now
    }

    /// Close any open stall runs so the cycle taxonomy is complete; call at
    /// the end of a measurement.
    pub fn finalize(&mut self) {
        let now = self.now;
        for core in &mut self.cores {
            core.finalize(now, &mut self.probes);
        }
    }

    /// Committed instructions on core `idx`.
    pub fn committed(&self, idx: usize) -> u64 {
        self.cores[idx].committed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::core::instr::Instr;

    /// A memory-hungry synthetic kernel: strided loads over `blocks` cache
    /// blocks with some ALU filler.
    fn streaming_program(base: u64, blocks: u64) -> Vec<Instr> {
        let mut prog = Vec::new();
        for i in 0..blocks {
            prog.push(Instr::load(base + i * 64, &[]));
            prog.push(Instr::alu(&[1]));
            prog.push(Instr::alu(&[1]));
        }
        prog
    }

    #[test]
    fn single_core_system_runs_and_commits() {
        let cfg = SimConfig::scaled(2);
        let mut sys = System::new(cfg, vec![InstrStream::cyclic(streaming_program(0, 512))]);
        sys.run_cycles(20_000);
        sys.finalize();
        let s = sys.core_stats(0);
        assert!(s.committed_instrs > 1000, "committed {}", s.committed_instrs);
        assert_eq!(s.commit_cycles + s.stalls(), s.cycles);
    }

    #[test]
    fn sharing_slows_down_memory_bound_cores() {
        // Private mode: benchmark alone.
        let prog = streaming_program(0, 8192); // 512 KB, misses the L2
        let cfg = SimConfig::scaled(2);
        let mut private = System::new(cfg.clone(), vec![InstrStream::cyclic(prog.clone())]);
        private.run_core_until_committed(0, 20_000, 2_000_000);
        let private_cycles = private.now();

        // Shared mode: an antagonist streams on core 1.
        let antagonist = streaming_program(0x4000_0000, 8192);
        let mut shared =
            System::new(cfg, vec![InstrStream::cyclic(prog), InstrStream::cyclic(antagonist)]);
        shared.run_core_until_committed(0, 20_000, 4_000_000);
        let shared_cycles = shared.now();

        assert!(
            shared_cycles > private_cycles * 11 / 10,
            "interference must slow core 0: private={private_cycles} shared={shared_cycles}"
        );
        // And the interference counters must have seen it.
        assert!(shared.core_stats(0).interference_sum > 0);
    }

    #[test]
    fn idle_cores_do_not_perturb_private_mode() {
        let prog = streaming_program(0, 1024);
        let cfg2 = SimConfig::scaled(2);
        let mut a = System::new(cfg2, vec![InstrStream::cyclic(prog.clone())]);
        a.run_core_until_committed(0, 5_000, 1_000_000);
        // Same program on a 2-core config built for 2 streams but given 1.
        let cfg2b = SimConfig::scaled(2);
        let mut b = System::new(cfg2b, vec![InstrStream::cyclic(prog)]);
        b.run_core_until_committed(0, 5_000, 1_000_000);
        assert_eq!(a.now(), b.now(), "private runs must be deterministic");
    }

    #[test]
    fn probes_accumulate_and_drain() {
        let cfg = SimConfig::scaled(2);
        let mut sys = System::new(cfg, vec![InstrStream::cyclic(streaming_program(0, 512))]);
        sys.run_cycles(5_000);
        let events = sys.drain_probes();
        assert!(!events.is_empty());
        assert!(sys.drain_probes().is_empty(), "drain must empty the log");
        // Events are causally ordered per kind; check cycles are sane.
        for e in &events {
            assert!(e.cycle() <= 5_000 + 10_000, "event beyond horizon");
        }
    }

    #[test]
    fn llc_partitioning_is_wired_through() {
        let cfg = SimConfig::scaled(2);
        let mut sys = System::new(
            cfg,
            vec![
                InstrStream::cyclic(streaming_program(0, 4096)),
                InstrStream::cyclic(streaming_program(0x4000_0000, 4096)),
            ],
        );
        sys.set_llc_partition(Some(vec![0x00FF, 0xFF00]));
        sys.run_cycles(20_000);
        sys.finalize();
        assert!(sys.core_stats(0).committed_instrs > 0);
        assert!(sys.core_stats(1).committed_instrs > 0);
    }
}
