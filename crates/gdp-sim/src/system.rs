//! The top-level simulated system: N cores plus the shared memory
//! hierarchy.
//!
//! Two advancement engines share one state machine:
//!
//! * [`System::step`] — the fixed-increment reference engine: every
//!   component ticks every cycle. Simple, obviously correct, and kept as
//!   the oracle the event-driven engine is validated against.
//! * [`System::advance`] — the event-driven, quiescence-aware engine:
//!   after one mandatory step, each component reports its next-activity
//!   cycle and `now` jumps straight to the minimum, crossing dead
//!   stretches (every core stalled on a memory access whose completion
//!   cycle is already scheduled) in O(1) while accruing their cycle
//!   counts in bulk. Statistics, probe events and completion timing are
//!   **bit-identical** between the two engines; only wall-clock differs.
//!
//! * **Shared mode** — one benchmark per core, all cores active.
//! * **Private mode** — a single benchmark on core 0 with every other core
//!   idle (the paper's off-line configuration used as accounting ground
//!   truth). Build it by passing a single-element stream vector against a
//!   multi-core configuration.

use crate::config::SimConfig;
use crate::core::pipeline::{Core, CoreActivity};
use crate::core::InstrStream;
use crate::mem::MemorySystem;
use crate::probe::ProbeEvent;
use crate::stats::{CoreStats, Snapshot};
use crate::types::{CoreId, Cycle};

/// Engine activity counters accumulated by [`System::advance`] /
/// [`System::step`]. Plain integers (no atomics, no dependencies): the
/// simulator is single-threaded, and sessions export these into a
/// telemetry registry at interval boundaries.
///
/// All fields are deterministic for a given configuration and workload —
/// they count simulated work, not wall-clock.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineCounters {
    /// Cycles the clock has advanced in total (`now`).
    pub cycles: u64,
    /// Dead cycles crossed in bulk by the event-driven engine.
    pub cycles_skipped: u64,
    /// Cycles executed one-by-one (`cycles - cycles_skipped`).
    pub cycles_stepped: u64,
    /// Calls into [`System::advance`].
    pub advance_calls: u64,
    /// Bulk clock jumps taken (quiescent stretches actually crossed).
    pub bulk_jumps: u64,
    /// Per-core quiet windows installed (`set_quiet` cache fills).
    pub quiet_windows: u64,
    /// Steps taken under `GDP_SIM_ENGINE=step` (oracle mode); non-zero
    /// only when the reference engine is forced.
    pub oracle_steps: u64,
}

/// A complete simulated CMP.
#[derive(Debug)]
pub struct System {
    cfg: SimConfig,
    cores: Vec<Core>,
    mem: MemorySystem,
    now: Cycle,
    probes: Vec<ProbeEvent>,
    /// Dead cycles crossed in bulk by [`System::advance`].
    skipped: u64,
    /// `GDP_SIM_ENGINE=step` forces [`System::advance`] to run the
    /// step-by-1 reference engine — the end-to-end A/B hook CI uses to
    /// byte-diff campaign output between the engines.
    force_step: bool,
    /// Engine activity counts (advance calls, jumps, quiet windows).
    engine: EngineCounters,
}

impl System {
    /// Build a system running one [`InstrStream`] per active core. Streams
    /// may number fewer than `cfg.cores`: remaining cores stay idle (this
    /// is how private-mode runs are configured).
    ///
    /// # Panics
    /// Panics if more streams than cores are supplied.
    pub fn new(cfg: SimConfig, streams: Vec<InstrStream>) -> Self {
        assert!(
            streams.len() <= cfg.cores,
            "{} streams but only {} cores",
            streams.len(),
            cfg.cores
        );
        let cores = streams
            .into_iter()
            .enumerate()
            .map(|(i, s)| Core::new(CoreId(i as u8), &cfg.core, s))
            .collect();
        let mem = MemorySystem::new(&cfg);
        let force_step = std::env::var_os("GDP_SIM_ENGINE").is_some_and(|v| v == "step");
        System {
            cfg,
            cores,
            mem,
            now: 0,
            probes: Vec::new(),
            skipped: 0,
            force_step,
            engine: EngineCounters::default(),
        }
    }

    /// The configuration this system was built with.
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// Current cycle.
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Number of active cores.
    pub fn active_cores(&self) -> usize {
        self.cores.len()
    }

    /// Statistics of core `idx`.
    ///
    /// # Panics
    /// Panics if `idx` is not an active core.
    pub fn core_stats(&self, idx: usize) -> &CoreStats {
        self.cores[idx].stats()
    }

    /// Snapshot of all active cores' statistics at the current cycle.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot { cycle: self.now, cores: self.cores.iter().map(|c| *c.stats()).collect() }
    }

    /// Mutable access to the memory system (partitioning, ASM priority).
    pub fn mem(&mut self) -> &mut MemorySystem {
        &mut self.mem
    }

    /// Immutable access to the memory system.
    pub fn mem_ref(&self) -> &MemorySystem {
        &self.mem
    }

    /// Install (or clear) LLC way-partition masks.
    pub fn set_llc_partition(&mut self, masks: Option<Vec<u64>>) {
        self.mem.set_llc_partition(masks);
    }

    /// Take all probe events accumulated since the last drain.
    ///
    /// The order is deterministic for a given configuration and workload:
    /// each cycle the memory system appends its events before the cores
    /// (in core order), and the simulation itself is single-threaded and
    /// free of ambient randomness. `gdp-trace` relies on this contract —
    /// a recorded stream replayed through the same estimators reproduces
    /// the live estimates bit-for-bit precisely because two identical
    /// runs drain identical event sequences.
    pub fn drain_probes(&mut self) -> Vec<ProbeEvent> {
        std::mem::take(&mut self.probes)
    }

    /// Advance the whole system by one cycle.
    pub fn step(&mut self) {
        let now = self.now;
        self.mem.tick(now, &mut self.probes);
        for done in self.mem.take_completions() {
            self.cores[done.core.idx()].record_mem_completion(&done);
        }
        for core in &mut self.cores {
            core.tick(now, &mut self.mem, &mut self.probes);
        }
        self.now += 1;
    }

    /// Advance at least one cycle, then jump directly to the next cycle
    /// at which any component can change state, never passing `limit`.
    ///
    /// This is the event-driven engine: after the mandatory [`step`],
    /// every component reports the earliest future cycle it could act
    /// ([`Core::next_activity`], `MemorySystem::next_activity`), and
    /// `now` moves straight to the minimum. The skipped cycles are dead
    /// by construction — no commits, no issues, no probe events, no
    /// memory-controller decisions — so bulk-accounting them onto each
    /// core's cycle counter leaves statistics, probe streams and
    /// completion timing **bit-identical** to calling [`step`] in a
    /// loop, at O(1) cost per dead stretch.
    ///
    /// `limit` exists for callers with cycle-indexed obligations
    /// (accounting-interval boundaries, ASM epoch rotations, cycle
    /// caps): `advance` never moves `now` beyond it, so those callers
    /// observe the exact boundary cycle just as a step-by-1 loop would.
    ///
    /// [`step`]: System::step
    /// [`Core::next_activity`]: crate::core::pipeline::Core::next_activity
    pub fn advance(&mut self, limit: Cycle) {
        // The mandatory step always moves the clock one cycle, so a limit
        // at or below `now` cannot be honored — callers must pass a
        // strictly future bound (the run loops re-derive theirs after
        // every advance for exactly this reason).
        debug_assert!(limit > self.now, "advance limit {limit} is not past cycle {}", self.now);
        self.engine.advance_calls += 1;
        if self.force_step {
            self.engine.oracle_steps += 1;
            self.step();
            return;
        }
        self.step();
        if self.now >= limit {
            return;
        }
        // Refresh each core's cached quiescence window. A cached window
        // makes the core's subsequent ticks O(1) (see `Core::tick`) even
        // when the system as a whole cannot skip — the common case on
        // wide CMPs where the memory controller arbitrates every cycle
        // while most cores sit in long stalls.
        let mut all_quiet = true;
        let mut bound: Option<Cycle> = None;
        for i in 0..self.cores.len() {
            if self.now >= self.cores[i].quiet_until() {
                match self.cores[i].next_activity(self.now) {
                    CoreActivity::Now => {
                        all_quiet = false;
                        continue;
                    }
                    CoreActivity::Quiescent { next, l1_retry } => {
                        let retry = match l1_retry {
                            // The core's l1_blocked flag may be stale;
                            // only a probe confirmed blocked against live
                            // MSHR/tag state is guaranteed pure.
                            Some(block) => {
                                if !self.mem.l1_probe_stays_blocked(CoreId(i as u8), block) {
                                    all_quiet = false;
                                    continue; // it would succeed: real work
                                }
                                Some(block)
                            }
                            None => None,
                        };
                        let until = next.unwrap_or(Cycle::MAX);
                        if until <= self.now {
                            all_quiet = false;
                            continue;
                        }
                        self.cores[i].set_quiet(until, retry);
                        self.engine.quiet_windows += 1;
                    }
                }
            }
            let until = self.cores[i].quiet_until();
            if until != Cycle::MAX {
                bound = Some(bound.map_or(until, |b| b.min(until)));
            }
        }
        if !all_quiet {
            return;
        }
        // Every core is verified quiescent: jump the clock to the next
        // cycle anything can happen (bounded by `limit`), accounting the
        // dead cycles in bulk.
        match self.mem.next_activity(self.now) {
            Some(t) if t <= self.now => return, // memory is active: no jump
            Some(t) => bound = Some(bound.map_or(t, |b| b.min(t))),
            None => {}
        }
        let target = match bound {
            Some(t) => t.min(limit),
            // Nothing self-schedules at all: the system is dead until
            // `limit` (a step-by-1 engine would spin to the same state).
            None => limit,
        };
        if target > self.now {
            let skipped = target - self.now;
            for core in &mut self.cores {
                core.add_idle_cycles(skipped);
                if core.quiet_l1_retry().is_some() {
                    self.mem.replay_blocked_l1_probes(core.id(), skipped);
                }
            }
            // Stably-blocked memory retries re-fail once per skipped
            // cycle; replay their counter effects in bulk.
            self.mem.replay_blocked_retries(skipped);
            self.skipped += skipped;
            self.engine.bulk_jumps += 1;
            self.now = target;
        }
    }

    /// Dead cycles crossed in bulk by [`System::advance`] so far — the
    /// cycles a step-by-1 engine would have burned real work on.
    pub fn skipped_cycles(&self) -> u64 {
        self.skipped
    }

    /// Engine activity counters at the current cycle (see
    /// [`EngineCounters`]); the cycle totals are filled in from the live
    /// clock so the snapshot is always self-consistent.
    pub fn engine_counters(&self) -> EngineCounters {
        EngineCounters {
            cycles: self.now,
            cycles_skipped: self.skipped,
            cycles_stepped: self.now - self.skipped,
            ..self.engine
        }
    }

    /// The engine's activity predictions at the current cycle: per-core
    /// [`CoreActivity`] reports plus the memory system's next-activity
    /// bound. Exposed for the quiescence oracle test, which replays these
    /// predictions against the step-by-1 reference engine cycle by cycle.
    pub fn quiescence_diag(&self) -> (Vec<CoreActivity>, Option<Cycle>) {
        (
            self.cores.iter().map(|c| c.next_activity(self.now)).collect(),
            self.mem.next_activity(self.now),
        )
    }

    /// Run for `n` cycles (event-driven; bit-identical to `n` calls of
    /// [`step`](System::step)).
    pub fn run_cycles(&mut self, n: u64) {
        let deadline = self.now + n;
        while self.now < deadline {
            self.advance(deadline);
        }
    }

    /// Run until every active core has committed at least `target`
    /// instructions, or `max_cycles` elapse. Returns the cycle reached.
    pub fn run_until_committed(&mut self, target: u64, max_cycles: u64) -> Cycle {
        let deadline = self.now + max_cycles;
        while self.now < deadline && self.cores.iter().any(|c| c.committed() < target) {
            self.advance(deadline);
        }
        self.now
    }

    /// Run until core `idx` has committed at least `target` instructions,
    /// or `max_cycles` elapse. Returns the cycle reached.
    pub fn run_core_until_committed(&mut self, idx: usize, target: u64, max_cycles: u64) -> Cycle {
        let deadline = self.now + max_cycles;
        while self.now < deadline && self.cores[idx].committed() < target {
            self.advance(deadline);
        }
        self.now
    }

    /// Close any open stall runs so the cycle taxonomy is complete; call at
    /// the end of a measurement.
    pub fn finalize(&mut self) {
        let now = self.now;
        for core in &mut self.cores {
            core.finalize(now, &mut self.probes);
        }
    }

    /// Committed instructions on core `idx`.
    pub fn committed(&self, idx: usize) -> u64 {
        self.cores[idx].committed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::core::instr::Instr;

    /// A memory-hungry synthetic kernel: strided loads over `blocks` cache
    /// blocks with some ALU filler.
    fn streaming_program(base: u64, blocks: u64) -> Vec<Instr> {
        let mut prog = Vec::new();
        for i in 0..blocks {
            prog.push(Instr::load(base + i * 64, &[]));
            prog.push(Instr::alu(&[1]));
            prog.push(Instr::alu(&[1]));
        }
        prog
    }

    #[test]
    fn single_core_system_runs_and_commits() {
        let cfg = SimConfig::scaled(2);
        let mut sys = System::new(cfg, vec![InstrStream::cyclic(streaming_program(0, 512))]);
        sys.run_cycles(20_000);
        sys.finalize();
        let s = sys.core_stats(0);
        assert!(s.committed_instrs > 1000, "committed {}", s.committed_instrs);
        assert_eq!(s.commit_cycles + s.stalls(), s.cycles);
    }

    #[test]
    fn sharing_slows_down_memory_bound_cores() {
        // Private mode: benchmark alone.
        let prog = streaming_program(0, 8192); // 512 KB, misses the L2
        let cfg = SimConfig::scaled(2);
        let mut private = System::new(cfg.clone(), vec![InstrStream::cyclic(prog.clone())]);
        private.run_core_until_committed(0, 20_000, 2_000_000);
        let private_cycles = private.now();

        // Shared mode: an antagonist streams on core 1.
        let antagonist = streaming_program(0x4000_0000, 8192);
        let mut shared =
            System::new(cfg, vec![InstrStream::cyclic(prog), InstrStream::cyclic(antagonist)]);
        shared.run_core_until_committed(0, 20_000, 4_000_000);
        let shared_cycles = shared.now();

        assert!(
            shared_cycles > private_cycles * 11 / 10,
            "interference must slow core 0: private={private_cycles} shared={shared_cycles}"
        );
        // And the interference counters must have seen it.
        assert!(shared.core_stats(0).interference_sum > 0);
    }

    #[test]
    fn idle_cores_do_not_perturb_private_mode() {
        let prog = streaming_program(0, 1024);
        let cfg2 = SimConfig::scaled(2);
        let mut a = System::new(cfg2, vec![InstrStream::cyclic(prog.clone())]);
        a.run_core_until_committed(0, 5_000, 1_000_000);
        // Same program on a 2-core config built for 2 streams but given 1.
        let cfg2b = SimConfig::scaled(2);
        let mut b = System::new(cfg2b, vec![InstrStream::cyclic(prog)]);
        b.run_core_until_committed(0, 5_000, 1_000_000);
        assert_eq!(a.now(), b.now(), "private runs must be deterministic");
    }

    #[test]
    fn probes_accumulate_and_drain() {
        let cfg = SimConfig::scaled(2);
        let mut sys = System::new(cfg, vec![InstrStream::cyclic(streaming_program(0, 512))]);
        sys.run_cycles(5_000);
        let events = sys.drain_probes();
        assert!(!events.is_empty());
        assert!(sys.drain_probes().is_empty(), "drain must empty the log");
        // Events are causally ordered per kind; check cycles are sane.
        for e in &events {
            assert!(e.cycle() <= 5_000 + 10_000, "event beyond horizon");
        }
    }

    /// Drive a system with the step-by-1 reference engine for `n` cycles.
    fn run_stepped(sys: &mut System, n: u64) {
        for _ in 0..n {
            sys.step();
        }
    }

    #[test]
    fn event_engine_is_bit_identical_to_stepped_engine() {
        let mk = || {
            let cfg = SimConfig::scaled(2);
            System::new(
                cfg,
                vec![
                    InstrStream::cyclic(streaming_program(0, 4096)),
                    InstrStream::cyclic(streaming_program(0x4000_0000, 64)),
                ],
            )
        };
        let horizon = 30_000;
        let mut a = mk();
        run_stepped(&mut a, horizon);
        let mut b = mk();
        b.run_cycles(horizon); // event-driven
        a.finalize();
        b.finalize();
        assert_eq!(a.now(), b.now());
        for c in 0..2 {
            assert_eq!(a.core_stats(c), b.core_stats(c), "core {c} stats diverged");
        }
        assert_eq!(a.mem_ref().stats, b.mem_ref().stats);
        assert_eq!(a.drain_probes(), b.drain_probes(), "probe streams diverged");
        assert!(b.skipped_cycles() > 0, "memory-bound run must skip dead cycles");
        assert_eq!(a.skipped_cycles(), 0, "step() never skips");
    }

    #[test]
    fn engine_counters_track_jumps_and_windows() {
        let cfg = SimConfig::scaled(2);
        let mut sys = System::new(cfg, vec![InstrStream::cyclic(streaming_program(0, 8192))]);
        sys.run_cycles(40_000);
        let c = sys.engine_counters();
        assert_eq!(c.cycles, 40_000);
        assert_eq!(c.cycles_skipped, sys.skipped_cycles());
        assert_eq!(c.cycles_stepped + c.cycles_skipped, c.cycles);
        assert!(c.advance_calls > 0);
        assert!(c.bulk_jumps > 0, "memory-bound run must jump");
        // A cached quiet window can be reused across several jumps, so
        // no ordering holds between the two; both just have to fire.
        assert!(c.quiet_windows > 0);
        assert_eq!(c.oracle_steps, 0, "oracle mode not forced");
        assert!(c.advance_calls >= c.bulk_jumps);
    }

    #[test]
    fn advance_never_passes_its_limit() {
        let cfg = SimConfig::scaled(2);
        let mut sys = System::new(cfg, vec![InstrStream::cyclic(streaming_program(0, 8192))]);
        let mut boundaries = 0;
        while sys.now() < 40_000 {
            let limit = (sys.now() / 5_000 + 1) * 5_000;
            sys.advance(limit);
            assert!(sys.now() <= limit, "advance overshot {limit} to {}", sys.now());
            if sys.now() == limit {
                boundaries += 1;
            }
        }
        assert_eq!(boundaries, 8, "every 5K boundary must be observed exactly");
        assert!(sys.skipped_cycles() > 0);
    }

    #[test]
    fn llc_partitioning_is_wired_through() {
        let cfg = SimConfig::scaled(2);
        let mut sys = System::new(
            cfg,
            vec![
                InstrStream::cyclic(streaming_program(0, 4096)),
                InstrStream::cyclic(streaming_program(0x4000_0000, 4096)),
            ],
        );
        sys.set_llc_partition(Some(vec![0x00FF, 0xFF00]));
        sys.run_cycles(20_000);
        sys.finalize();
        assert!(sys.core_stats(0).committed_instrs > 0);
        assert!(sys.core_stats(1).committed_instrs > 0);
    }
}
