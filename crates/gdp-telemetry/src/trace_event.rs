//! Chrome trace-event (Perfetto-loadable) span timeline export.
//!
//! A [`TraceRecorder`] collects *complete* (`"ph": "X"`) slices — one
//! per pool job and one per entered [`Span`](crate::Span) — onto a
//! wall-clock timeline with **one lane per pool worker**: lane 0 is the
//! main thread, lane `w + 1` is pool worker `w` (workers publish their
//! lane through a thread-local, so spans entered inside a job land on
//! that job's lane, nested under it by time containment). The JSON
//! written by [`TraceRecorder::write_json`] loads directly into
//! `chrome://tracing` or <https://ui.perfetto.dev>.
//!
//! The timeline is **wall-clock by construction** — slice placement
//! varies with scheduling and machine speed — so the trace file lives
//! strictly outside every byte-compared `data` section and stdout
//! surface, exactly like the `spans` group of the metrics snapshot.
//! Recording is bounded: past [`TraceRecorder::MAX_EVENTS`] slices the
//! recorder counts drops instead of growing, and the drop count is
//! reported as `gdp.dropped_events` metadata.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::COMPILED_IN;

thread_local! {
    /// The trace lane (Perfetto `tid`) slices from this thread land on:
    /// 0 = main, `w + 1` = pool worker `w`.
    static LANE: Cell<u32> = const { Cell::new(0) };
}

/// Set the current thread's trace lane (pool workers call this with
/// `worker + 1` before running jobs; 0 restores the main lane).
pub fn set_lane(lane: u32) {
    LANE.with(|l| l.set(lane));
}

/// The current thread's trace lane.
pub fn current_lane() -> u32 {
    LANE.with(|l| l.get())
}

#[derive(Debug, Clone)]
struct TraceEvent {
    name: String,
    lane: u32,
    /// Microseconds since the recorder epoch.
    start_us: u64,
    dur_ns: u64,
}

/// A bounded wall-clock slice recorder (see the module docs).
#[derive(Debug)]
pub struct TraceRecorder {
    epoch: Instant,
    events: Mutex<Vec<TraceEvent>>,
    dropped: AtomicU64,
}

impl TraceRecorder {
    /// Slice cap: past this the recorder counts drops instead of
    /// growing (a full-scale campaign emits one slice per technique per
    /// core per interval — bounded memory beats a silent OOM).
    pub const MAX_EVENTS: usize = 250_000;

    /// A fresh recorder; its creation instant is the timeline origin.
    pub fn new() -> TraceRecorder {
        TraceRecorder {
            epoch: Instant::now(),
            events: Mutex::new(Vec::new()),
            dropped: AtomicU64::new(0),
        }
    }

    /// A fresh recorder behind an `Arc` (the shape every attachment
    /// point takes).
    pub fn shared() -> Arc<TraceRecorder> {
        Arc::new(TraceRecorder::new())
    }

    /// Record one complete slice on `lane`. `start` must come from the
    /// same monotonic clock as the recorder (any `Instant::now()` after
    /// construction); earlier starts clamp to the epoch.
    pub fn record_complete(&self, name: &str, lane: u32, start: Instant, dur: Duration) {
        if !COMPILED_IN {
            return;
        }
        let mut events = self.events.lock().expect("trace recorder poisoned");
        if events.len() >= Self::MAX_EVENTS {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        events.push(TraceEvent {
            name: name.to_string(),
            lane,
            start_us: start.saturating_duration_since(self.epoch).as_micros() as u64,
            dur_ns: dur.as_nanos() as u64,
        });
    }

    /// Slices recorded so far.
    pub fn len(&self) -> usize {
        self.events.lock().expect("trace recorder poisoned").len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Slices dropped past [`TraceRecorder::MAX_EVENTS`].
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// The Chrome trace-event JSON document: per-lane `thread_name`
    /// metadata, then every slice as a `"ph": "X"` complete event
    /// (`ts`/`dur` in microseconds), sorted by lane then start so the
    /// output is stable for a fixed recording.
    pub fn to_json(&self) -> String {
        let mut events = self.events.lock().expect("trace recorder poisoned").clone();
        events.sort_by(|a, b| (a.lane, a.start_us, &a.name).cmp(&(b.lane, b.start_us, &b.name)));
        let mut lanes: Vec<u32> = events.iter().map(|e| e.lane).collect();
        lanes.sort_unstable();
        lanes.dedup();
        let mut out = String::from("{\"displayTimeUnit\": \"ms\",\n\"traceEvents\": [\n");
        let mut first = true;
        for lane in &lanes {
            let label =
                if *lane == 0 { "main".to_string() } else { format!("worker {}", lane - 1) };
            if !first {
                out.push_str(",\n");
            }
            first = false;
            out.push_str(&format!(
                "{{\"ph\": \"M\", \"pid\": 1, \"tid\": {lane}, \"name\": \"thread_name\", \
                 \"args\": {{\"name\": \"{label}\"}}}}"
            ));
        }
        for e in &events {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            let mut name = String::new();
            crate::registry::push_json_str(&mut name, &e.name);
            out.push_str(&format!(
                "{{\"ph\": \"X\", \"pid\": 1, \"tid\": {}, \"ts\": {}, \"dur\": {:.3}, \
                 \"name\": {name}}}",
                e.lane,
                e.start_us,
                e.dur_ns as f64 / 1_000.0,
            ));
        }
        out.push_str(&format!(
            "\n],\n\"gdp.dropped_events\": {},\n\"gdp.lanes\": {}\n}}\n",
            self.dropped(),
            lanes.len()
        ));
        out
    }

    /// Write the trace document to `path`, creating parent directories.
    pub fn write_json(&self, path: &str) -> std::io::Result<()> {
        if let Some(dir) = std::path::Path::new(path).parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        std::fs::write(path, self.to_json())
    }
}

impl Default for TraceRecorder {
    fn default() -> TraceRecorder {
        TraceRecorder::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lane_is_a_thread_local() {
        assert_eq!(current_lane(), 0);
        set_lane(3);
        assert_eq!(current_lane(), 3);
        std::thread::spawn(|| assert_eq!(current_lane(), 0, "fresh threads start on main"))
            .join()
            .unwrap();
        set_lane(0);
    }

    #[test]
    fn records_slices_and_emits_chrome_trace_json() {
        let tr = TraceRecorder::new();
        assert!(tr.is_empty());
        let start = Instant::now();
        tr.record_complete("job#0", 1, start, Duration::from_micros(1500));
        tr.record_complete("session.advance", 1, start, Duration::from_micros(900));
        tr.record_complete("job#1", 2, start, Duration::from_micros(10));
        assert_eq!(tr.len(), 3);
        let j = tr.to_json();
        for key in [
            "\"traceEvents\"",
            "\"ph\": \"X\"",
            "\"ph\": \"M\"",
            "\"worker 0\"",
            "\"worker 1\"",
            "\"session.advance\"",
            "\"gdp.dropped_events\": 0",
            "\"gdp.lanes\": 2",
        ] {
            assert!(j.contains(key), "missing {key} in {j}");
        }
        // Slices sort by lane: worker 0's events precede worker 1's.
        assert!(j.find("job#0").unwrap() < j.find("job#1").unwrap());
    }

    #[test]
    fn starts_before_the_epoch_clamp_instead_of_panicking() {
        let early = Instant::now();
        let tr = TraceRecorder::new();
        tr.record_complete("x", 0, early, Duration::from_nanos(5));
        assert!(tr.to_json().contains("\"ts\": 0"));
    }

    #[test]
    fn hostile_names_are_escaped() {
        let tr = TraceRecorder::new();
        tr.record_complete("we\"ird\\name", 0, Instant::now(), Duration::ZERO);
        assert!(tr.to_json().contains("we\\\"ird\\\\name"));
    }
}
