//! # gdp-telemetry — deterministic metrics, span profiling, flight
//! recorder and logging
//!
//! A std-only, dependency-free observability layer for the estimation
//! stack. Five pieces:
//!
//! * [`MetricsRegistry`] — named counters, gauges, histograms, span
//!   timers and time-series behind cheap atomic handles. **Counters are
//!   the deterministic class**: everything registered as a counter
//!   counts a quantity that is identical for every `--jobs N` (events
//!   observed, intervals emitted, cycles skipped, cache hits), so the
//!   counters-only snapshot ([`Snapshot::counters_json`]) is
//!   byte-stable and CI-diffable. Gauges, histograms and spans carry
//!   scheduling- and wall-clock-dependent measurements and only appear
//!   in the full snapshot ([`Snapshot::to_json`]).
//! * [`Span`] — lightweight manual profiling: `registry.span(name)`
//!   once, then [`SpanHandle::enter`] around a phase; durations are
//!   aggregated per name (total + count + nested-child time for
//!   self-time reporting), never allocated per event.
//! * [`TimeSeries`] — the flight recorder's deterministic dimension:
//!   fixed-capacity rings sampled at accounting-interval boundaries
//!   (simulated time). The `timeseries` snapshot group
//!   ([`Snapshot::timeseries_json`]) is byte-identical across
//!   `--jobs N`, like the counters; the `timeseries_wall` group carries
//!   wall-clock per-interval samples and is not.
//! * [`TraceRecorder`] — the flight recorder's wall-clock dimension: a
//!   Chrome trace-event / Perfetto timeline (`--trace-out`) with one
//!   lane per pool worker; attach with [`MetricsRegistry::set_tracer`]
//!   and every entered span lands as a slice.
//! * [`log`] — a tiny leveled stderr logger (`GDP_LOG=quiet|info|debug`
//!   or [`log::set_level`]) replacing the scattered `eprintln!`
//!   diagnostics; default level `info` keeps output byte-identical to
//!   the pre-logger tree.
//!
//! Instrumentation compiles out entirely with the `telemetry-off`
//! feature ([`COMPILED_IN`]); at runtime it costs nothing unless a
//! registry is attached (hot paths hold `Option` handles).

pub mod log;
pub mod profile;
pub mod registry;
pub mod timeseries;
pub mod trace_event;

pub use profile::render_profile;
pub use registry::{
    Counter, Gauge, Histogram, HistogramSnapshot, MetricsRegistry, Snapshot, Span, SpanHandle,
    SpanSnapshot,
};
pub use timeseries::{TimeSeries, TimeSeriesSnapshot};
pub use trace_event::TraceRecorder;

/// `false` when the `telemetry-off` feature compiled the instrumentation
/// layer out; every handle method early-returns on this constant, so the
/// optimizer removes the calls entirely.
pub const COMPILED_IN: bool = !cfg!(feature = "telemetry-off");
