//! # gdp-telemetry — deterministic metrics + span profiling + logging
//!
//! A std-only, dependency-free observability layer for the estimation
//! stack. Three pieces:
//!
//! * [`MetricsRegistry`] — named counters, gauges, histograms and span
//!   timers behind cheap atomic handles. **Counters are the
//!   deterministic class**: everything registered as a counter counts a
//!   quantity that is identical for every `--jobs N` (events observed,
//!   intervals emitted, cycles skipped, cache hits), so the
//!   counters-only snapshot ([`Snapshot::counters_json`]) is
//!   byte-stable and CI-diffable. Gauges, histograms and spans carry
//!   scheduling- and wall-clock-dependent measurements and only appear
//!   in the full snapshot ([`Snapshot::to_json`]).
//! * [`Span`] — lightweight manual profiling: `registry.span(name)`
//!   once, then [`SpanHandle::enter`] around a phase; durations are
//!   aggregated per name (total + count), never allocated per event.
//! * [`log`] — a tiny leveled stderr logger (`GDP_LOG=quiet|info|debug`
//!   or [`log::set_level`]) replacing the scattered `eprintln!`
//!   diagnostics; default level `info` keeps output byte-identical to
//!   the pre-logger tree.
//!
//! Instrumentation compiles out entirely with the `telemetry-off`
//! feature ([`COMPILED_IN`]); at runtime it costs nothing unless a
//! registry is attached (hot paths hold `Option` handles).

pub mod log;
pub mod profile;
pub mod registry;

pub use profile::render_profile;
pub use registry::{
    Counter, Gauge, Histogram, MetricsRegistry, Snapshot, Span, SpanHandle, SpanSnapshot,
};

/// `false` when the `telemetry-off` feature compiled the instrumentation
/// layer out; every handle method early-returns on this constant, so the
/// optimizer removes the calls entirely.
pub const COMPILED_IN: bool = !cfg!(feature = "telemetry-off");
