//! The `--profile` stderr table: top spans by total time.

use std::time::Duration;

use crate::registry::Snapshot;

/// Render the span-profile table for a finished run: spans sorted by
/// total time (descending, name as tie-break), with share of `wall`,
/// entry count and mean duration. Returns the table as a string for the
/// caller to print to stderr.
pub fn render_profile(snapshot: &Snapshot, wall: Duration) -> String {
    let mut spans = snapshot.spans.clone();
    spans.sort_by(|a, b| b.total.cmp(&a.total).then_with(|| a.name.cmp(&b.name)));
    let name_w = spans.iter().map(|s| s.name.len()).max().unwrap_or(4).max("span".len());
    let wall_s = wall.as_secs_f64();
    let mut out = String::new();
    out.push_str(&format!(
        "{:<name_w$}  {:>10}  {:>6}  {:>8}  {:>10}\n",
        "span", "total", "%wall", "count", "mean"
    ));
    let mut attributed = 0.0;
    for s in &spans {
        let total_s = s.total.as_secs_f64();
        // Nested spans overlap their parents; only top-level phases
        // (single-dot names) count toward the attribution line.
        if s.name.matches('.').count() <= 1 {
            attributed += total_s;
        }
        let pct = if wall_s > 0.0 { 100.0 * total_s / wall_s } else { 0.0 };
        let mean_s = if s.count > 0 { total_s / s.count as f64 } else { 0.0 };
        out.push_str(&format!(
            "{:<name_w$}  {:>9.3}s  {:>5.1}%  {:>8}  {:>9.3}ms\n",
            s.name,
            total_s,
            pct,
            s.count,
            mean_s * 1e3,
        ));
    }
    let pct = if wall_s > 0.0 { 100.0 * attributed / wall_s } else { 0.0 };
    out.push_str(&format!(
        "wall-clock {wall_s:.3}s, attributed {attributed:.3}s ({pct:.1}% in top-level spans)\n"
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::SpanSnapshot;

    fn span(name: &str, count: u64, ms: u64) -> SpanSnapshot {
        SpanSnapshot { name: name.to_string(), count, total: Duration::from_millis(ms) }
    }

    #[test]
    fn sorts_by_total_and_attributes_top_level_only() {
        let snap = Snapshot {
            spans: vec![
                span("session.estimate.gdp", 10, 100), // nested: excluded from attribution
                span("sweep.shared", 4, 700),
                span("sweep.private", 4, 200),
            ],
            ..Snapshot::default()
        };
        let table = render_profile(&snap, Duration::from_millis(1000));
        let lines: Vec<&str> = table.lines().collect();
        assert!(lines[1].starts_with("sweep.shared"), "largest span first: {table}");
        assert!(lines[2].starts_with("sweep.private"));
        assert!(table.contains("attributed 0.900s (90.0% in top-level spans)"), "{table}");
    }

    #[test]
    fn zero_wall_does_not_divide_by_zero() {
        let snap = Snapshot { spans: vec![span("a.b", 1, 5)], ..Snapshot::default() };
        let table = render_profile(&snap, Duration::ZERO);
        assert!(table.contains("0.0%"), "{table}");
    }
}
