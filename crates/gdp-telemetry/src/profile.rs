//! The `--profile` stderr table: top spans by total time, with
//! self-time (nested spans subtracted) and histogram percentiles.

use std::time::Duration;

use crate::registry::Snapshot;

/// Render the span-profile table for a finished run: spans sorted by
/// total time (descending, name as tie-break), with **self-time**
/// (total minus time spent in spans nested inside at runtime), share of
/// `wall`, entry count and mean duration; followed by a percentile
/// table (p50/p90/p99 from the power-of-two histograms) when the
/// snapshot carries any. Returns the table as a string for the caller
/// to print to stderr.
///
/// The attribution line sums *self*-times, so nesting between
/// stack-entered spans no longer double counts. Two things still push
/// it above 100%: genuine parallelism (workers run concurrently), and
/// pre-aggregated envelope spans ([`crate::SpanHandle::add`] folds a
/// measured total without entering the stack, so children cannot
/// subtract from it — `pool.job` is the canonical example).
pub fn render_profile(snapshot: &Snapshot, wall: Duration) -> String {
    let mut spans = snapshot.spans.clone();
    spans.sort_by(|a, b| b.total.cmp(&a.total).then_with(|| a.name.cmp(&b.name)));
    let name_w = spans.iter().map(|s| s.name.len()).max().unwrap_or(4).max("span".len());
    let wall_s = wall.as_secs_f64();
    let mut out = String::new();
    out.push_str(&format!(
        "{:<name_w$}  {:>10}  {:>10}  {:>6}  {:>8}  {:>10}\n",
        "span", "total", "self", "%wall", "count", "mean"
    ));
    let mut attributed = 0.0;
    for s in &spans {
        let total_s = s.total.as_secs_f64();
        let self_s = s.self_time().as_secs_f64();
        // Self-time already excludes nested spans, so summing it over
        // *all* spans attributes each nanosecond exactly once per
        // thread that spent it.
        attributed += self_s;
        let pct = if wall_s > 0.0 { 100.0 * total_s / wall_s } else { 0.0 };
        let mean_s = if s.count > 0 { total_s / s.count as f64 } else { 0.0 };
        out.push_str(&format!(
            "{:<name_w$}  {:>9.3}s  {:>9.3}s  {:>5.1}%  {:>8}  {:>9.3}ms\n",
            s.name,
            total_s,
            self_s,
            pct,
            s.count,
            mean_s * 1e3,
        ));
    }
    let pct = if wall_s > 0.0 { 100.0 * attributed / wall_s } else { 0.0 };
    out.push_str(&format!(
        "wall-clock {wall_s:.3}s, attributed {attributed:.3}s self-time \
         ({pct:.1}% of wall; >100% means parallel workers or enveloping spans)\n"
    ));
    if !snapshot.histograms.is_empty() {
        let hname_w = snapshot
            .histograms
            .iter()
            .map(|(n, _)| n.len())
            .max()
            .unwrap_or(9)
            .max("histogram".len());
        out.push_str(&format!(
            "\n{:<hname_w$}  {:>8}  {:>10}  {:>10}  {:>10}\n",
            "histogram", "count", "p50", "p90", "p99"
        ));
        for (name, h) in &snapshot.histograms {
            let (p50, p90, p99) = h.percentiles();
            out.push_str(&format!(
                "{name:<hname_w$}  {:>8}  {:>10}  {:>10}  {:>10}\n",
                h.count,
                fmt_ns(p50),
                fmt_ns(p90),
                fmt_ns(p99)
            ));
        }
        out.push_str("(percentiles are power-of-two bucket ceilings: upper bounds within 2x)\n");
    }
    out
}

/// Format a nanosecond quantity with a unit suffix (the histograms all
/// record durations in ns; bucket ceilings span 1ns..2^47ns ≈ 39h).
fn fmt_ns(ns: u64) -> String {
    match ns {
        0..=9_999 => format!("{ns}ns"),
        10_000..=9_999_999 => format!("{}us", ns / 1_000),
        10_000_000..=9_999_999_999 => format!("{}ms", ns / 1_000_000),
        _ => format!("{}s", ns / 1_000_000_000),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{HistogramSnapshot, SpanSnapshot};

    fn span(name: &str, count: u64, ms: u64, child_ms: u64) -> SpanSnapshot {
        SpanSnapshot {
            name: name.to_string(),
            count,
            total: Duration::from_millis(ms),
            child: Duration::from_millis(child_ms),
        }
    }

    #[test]
    fn sorts_by_total_and_attributes_self_time() {
        let snap = Snapshot {
            spans: vec![
                span("session.estimate.gdp", 10, 100, 0),
                span("sweep.shared", 4, 700, 100), // 100ms spent in the nested span
                span("sweep.private", 4, 200, 0),
            ],
            ..Snapshot::default()
        };
        let table = render_profile(&snap, Duration::from_millis(1000));
        let lines: Vec<&str> = table.lines().collect();
        assert!(lines[1].starts_with("sweep.shared"), "largest span first: {table}");
        assert!(lines[2].starts_with("sweep.private"));
        // Self-times: 600 + 200 + 100 = 900ms — each ns counted once.
        assert!(table.contains("attributed 0.900s self-time (90.0% of wall"), "{table}");
        assert!(lines[1].contains("0.600s"), "shared self-time column: {table}");
    }

    #[test]
    fn zero_wall_does_not_divide_by_zero() {
        let snap = Snapshot { spans: vec![span("a.b", 1, 5, 0)], ..Snapshot::default() };
        let table = render_profile(&snap, Duration::ZERO);
        assert!(table.contains("0.0%"), "{table}");
    }

    #[test]
    fn histograms_render_a_percentile_table() {
        let snap = Snapshot {
            histograms: vec![(
                "pool.job_ns".to_string(),
                HistogramSnapshot { count: 10, sum: 0, buckets: vec![(1 << 20, 9), (1 << 30, 1)] },
            )],
            ..Snapshot::default()
        };
        let table = render_profile(&snap, Duration::from_secs(1));
        assert!(table.contains("histogram"), "{table}");
        assert!(table.contains("pool.job_ns"), "{table}");
        assert!(table.contains("1048us"), "p50 = 2^20 ns: {table}");
        assert!(table.contains("1073ms"), "p99 = 2^30 ns: {table}");
    }

    #[test]
    fn fmt_ns_picks_readable_units() {
        assert_eq!(fmt_ns(0), "0ns");
        assert_eq!(fmt_ns(512), "512ns");
        assert_eq!(fmt_ns(1 << 14), "16us");
        assert_eq!(fmt_ns(1 << 24), "16ms");
        assert_eq!(fmt_ns(1 << 34), "17s");
    }
}
