//! A tiny leveled stderr logger.
//!
//! Three levels: `Quiet` (suppress everything), `Info` (the default —
//! exactly the diagnostics the tree printed before this logger existed,
//! so transcripts don't churn), `Debug` (extra detail). The level comes
//! from the `GDP_LOG` environment variable (`quiet|info|debug`), read
//! once on first use; [`set_level`] overrides it (the `--quiet` flag).
//!
//! Use the [`log_info!`](crate::log_info) / [`log_debug!`](crate::log_debug)
//! macros; they format nothing unless the level is enabled.

use std::sync::atomic::{AtomicU8, Ordering};

/// Log verbosity, ordered: `Quiet < Info < Debug`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Level {
    /// Suppress all diagnostics.
    Quiet = 1,
    /// Default: the pre-logger diagnostic set, byte-identical.
    Info = 2,
    /// Extra detail (cache keys, per-segment notes).
    Debug = 3,
}

/// 0 = uninitialized (read `GDP_LOG` on first query).
static LEVEL: AtomicU8 = AtomicU8::new(0);

fn level_from_env() -> Level {
    match std::env::var("GDP_LOG").ok().as_deref() {
        Some("quiet") => Level::Quiet,
        Some("debug") => Level::Debug,
        _ => Level::Info,
    }
}

/// The current level, initializing from `GDP_LOG` on first call.
pub fn level() -> Level {
    match LEVEL.load(Ordering::Relaxed) {
        1 => Level::Quiet,
        2 => Level::Info,
        3 => Level::Debug,
        _ => {
            let l = level_from_env();
            // A racing set_level wins: only replace the 0 sentinel.
            let _ = LEVEL.compare_exchange(0, l as u8, Ordering::Relaxed, Ordering::Relaxed);
            level()
        }
    }
}

/// Override the level (e.g. from a `--quiet` flag); takes precedence
/// over `GDP_LOG`.
pub fn set_level(l: Level) {
    LEVEL.store(l as u8, Ordering::Relaxed);
}

/// Whether messages at `l` are currently emitted.
pub fn enabled(l: Level) -> bool {
    level() >= l
}

/// Emit a diagnostic at [`Level::Info`] (the default level — replaces a
/// bare `eprintln!`).
#[macro_export]
macro_rules! log_info {
    ($($arg:tt)*) => {
        if $crate::log::enabled($crate::log::Level::Info) {
            eprintln!($($arg)*);
        }
    };
}

/// Emit a diagnostic at [`Level::Debug`] (hidden unless `GDP_LOG=debug`).
#[macro_export]
macro_rules! log_debug {
    ($($arg:tt)*) => {
        if $crate::log::enabled($crate::log::Level::Debug) {
            eprintln!($($arg)*);
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_order_and_override() {
        // Tests share the process-global level; drive it explicitly.
        set_level(Level::Info);
        assert!(enabled(Level::Info));
        assert!(!enabled(Level::Debug));
        set_level(Level::Quiet);
        assert!(!enabled(Level::Info));
        set_level(Level::Debug);
        assert!(enabled(Level::Debug));
        assert!(enabled(Level::Info));
        set_level(Level::Info);
    }
}
