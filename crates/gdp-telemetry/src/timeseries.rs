//! Interval-indexed time-series: the flight recorder's deterministic
//! per-interval dimension.
//!
//! A [`TimeSeries`] is a fixed-capacity ring of atomic bins sampled at
//! **accounting-interval boundaries** — simulated time, never wall
//! clock. `record(index, v)` folds `v` into `bins[index % capacity]`
//! with a plain `fetch_add`, so samples taken by concurrent sessions at
//! the same *session-local* interval index aggregate order-free: the
//! resulting series is byte-identical for every `--jobs N`, exactly like
//! the counters it decomposes over simulated time.
//!
//! Two kinds share the type:
//!
//! * **deterministic** ([`MetricsRegistry::time_series`]) — samples are
//!   simulated-work quantities (events per interval, engine cycle
//!   deltas, LLC access/miss deltas). Exported as the `timeseries`
//!   group of the metrics JSON and pinned `--jobs`-invariant by the
//!   determinism suite.
//! * **wall-clock** ([`MetricsRegistry::wall_time_series`]) — samples
//!   are nanoseconds (per-technique estimate time per interval).
//!   Exported as the separate `timeseries_wall` group and *excluded*
//!   from every byte-compared surface.
//!
//! Runs longer than the capacity wrap: bin `i` then holds the sum of
//! intervals `i, i+capacity, i+2·capacity, …` — a coarse but still
//! deterministic folding. `max_index` records how far the run actually
//! reached.
//!
//! [`MetricsRegistry::time_series`]: crate::MetricsRegistry::time_series
//! [`MetricsRegistry::wall_time_series`]: crate::MetricsRegistry::wall_time_series

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::COMPILED_IN;

/// Bins a [`TimeSeries`] ring keeps. Tiny-scale campaigns produce ~26
/// intervals per session (no wrap); longer runs fold modulo this.
pub const TIMESERIES_BINS: usize = 64;

#[derive(Debug)]
struct TimeSeriesInner {
    bins: Vec<AtomicU64>,
    samples: AtomicU64,
    /// Highest interval index recorded plus one (0 = never recorded),
    /// so `max_index()` can distinguish "no samples" from "index 0".
    end: AtomicU64,
    wall: bool,
}

/// A fixed-capacity interval-indexed ring of atomic bins (see the
/// module docs for the determinism contract).
#[derive(Debug, Clone)]
pub struct TimeSeries(Arc<TimeSeriesInner>);

impl TimeSeries {
    /// A standalone series (`wall` selects the export group; registry
    /// users go through [`MetricsRegistry::time_series`] /
    /// [`MetricsRegistry::wall_time_series`] instead).
    ///
    /// [`MetricsRegistry::time_series`]: crate::MetricsRegistry::time_series
    /// [`MetricsRegistry::wall_time_series`]: crate::MetricsRegistry::wall_time_series
    pub fn new(wall: bool) -> TimeSeries {
        TimeSeries(Arc::new(TimeSeriesInner {
            bins: (0..TIMESERIES_BINS).map(|_| AtomicU64::new(0)).collect(),
            samples: AtomicU64::new(0),
            end: AtomicU64::new(0),
            wall,
        }))
    }

    /// Whether this series carries wall-clock samples (exported under
    /// `timeseries_wall` instead of the deterministic `timeseries`).
    pub fn is_wall(&self) -> bool {
        self.0.wall
    }

    /// Fold `v` into the bin for interval `index` (order-free sum).
    #[inline]
    pub fn record(&self, index: u64, v: u64) {
        if !COMPILED_IN {
            return;
        }
        let cap = self.0.bins.len() as u64;
        self.0.bins[(index % cap) as usize].fetch_add(v, Ordering::Relaxed);
        self.0.samples.fetch_add(1, Ordering::Relaxed);
        self.0.end.fetch_max(index + 1, Ordering::Relaxed);
    }

    /// Samples recorded so far.
    pub fn samples(&self) -> u64 {
        self.0.samples.load(Ordering::Relaxed)
    }

    /// Highest interval index recorded, or `None` when empty.
    pub fn max_index(&self) -> Option<u64> {
        match self.0.end.load(Ordering::Relaxed) {
            0 => None,
            end => Some(end - 1),
        }
    }

    /// Point-in-time copy for a snapshot.
    pub fn snapshot(&self) -> TimeSeriesSnapshot {
        let cap = self.0.bins.len();
        let used = match self.max_index() {
            None => 0,
            Some(mi) => (mi as usize + 1).min(cap),
        };
        TimeSeriesSnapshot {
            samples: self.samples(),
            max_index: self.max_index(),
            capacity: cap as u64,
            bins: self.0.bins[..used].iter().map(|b| b.load(Ordering::Relaxed)).collect(),
        }
    }
}

impl Default for TimeSeries {
    fn default() -> TimeSeries {
        TimeSeries::new(false)
    }
}

/// One series' state in a [`Snapshot`](crate::Snapshot): `bins[i]` is
/// the sum over interval indices `≡ i (mod capacity)`, trimmed to the
/// used prefix (`min(max_index + 1, capacity)` entries).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimeSeriesSnapshot {
    /// Samples recorded.
    pub samples: u64,
    /// Highest interval index recorded (`None` when empty).
    pub max_index: Option<u64>,
    /// Ring capacity.
    pub capacity: u64,
    /// Used prefix of the ring.
    pub bins: Vec<u64>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_fold_by_index_and_track_the_end() {
        let ts = TimeSeries::new(false);
        assert_eq!(ts.max_index(), None);
        assert_eq!(ts.snapshot().bins, Vec::<u64>::new());
        ts.record(0, 5);
        ts.record(2, 7);
        ts.record(0, 1);
        assert_eq!(ts.samples(), 3);
        assert_eq!(ts.max_index(), Some(2));
        let s = ts.snapshot();
        assert_eq!(s.bins, vec![6, 0, 7]);
        assert_eq!(s.capacity, TIMESERIES_BINS as u64);
    }

    #[test]
    fn long_runs_wrap_modulo_capacity() {
        let ts = TimeSeries::new(true);
        assert!(ts.is_wall());
        let cap = TIMESERIES_BINS as u64;
        ts.record(1, 10);
        ts.record(1 + cap, 20); // same bin, one ring-lap later
        let s = ts.snapshot();
        assert_eq!(s.max_index, Some(1 + cap));
        assert_eq!(s.bins.len(), TIMESERIES_BINS, "wrapped ring is fully used");
        assert_eq!(s.bins[1], 30);
    }

    #[test]
    fn concurrent_records_aggregate_order_free() {
        let ts = TimeSeries::new(false);
        std::thread::scope(|s| {
            for _ in 0..4 {
                let ts = ts.clone();
                s.spawn(move || {
                    for i in 0..10u64 {
                        ts.record(i, i + 1);
                    }
                });
            }
        });
        let snap = ts.snapshot();
        assert_eq!(snap.samples, 40);
        for (i, b) in snap.bins.iter().enumerate() {
            assert_eq!(*b, 4 * (i as u64 + 1));
        }
    }
}
