//! The metrics registry: named counters, gauges, histograms, spans and
//! interval-indexed time-series.
//!
//! Registration interns a name into the registry map and returns a
//! cloneable atomic handle; the hot path only ever touches the handle
//! (one `fetch_add`), never the map. Names use dotted groups
//! (`engine.cycles_skipped`, `session.events.gdp`, `cache.hits`,
//! `pool.jobs`) — the group prefix is what the CI smoke test asserts on.
//!
//! The metric *kind* encodes a determinism contract, not just a shape:
//!
//! * **counter** — a deterministic count, identical for every `--jobs N`
//!   and every interleaving (sums of per-job counts are order-free);
//! * **gauge** — a scheduling-dependent value (steals, queue high-water,
//!   per-worker job counts); excluded from the deterministic snapshot;
//! * **histogram** — a distribution over power-of-two buckets
//!   (wall-clock per job, etc.); full snapshot only;
//! * **span** — aggregated wall-clock of a named phase (total + count +
//!   time spent inside *nested* spans, so profiles can report
//!   self-time); full snapshot only;
//! * **time-series** — a counter decomposed over accounting-interval
//!   indices ([`TimeSeries`]; deterministic, `timeseries` group) or a
//!   wall-clock per-interval measurement (`timeseries_wall` group).
//!
//! When a [`TraceRecorder`] is attached ([`MetricsRegistry::set_tracer`]
//! before any span is resolved), every entered span additionally lands
//! as a slice on the wall-clock trace timeline (`--trace-out`).

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::timeseries::{TimeSeries, TimeSeriesSnapshot};
use crate::trace_event::{current_lane, TraceRecorder};
use crate::COMPILED_IN;

/// Number of power-of-two buckets a [`Histogram`] keeps (bucket `i`
/// counts values `v` with `2^(i-1) < v <= 2^i`, bucket 0 counts 0..=1).
pub const HISTOGRAM_BUCKETS: usize = 48;

/// A deterministic event counter (see the module docs for the contract).
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Add `n` to the counter.
    #[inline]
    pub fn add(&self, n: u64) {
        if COMPILED_IN {
            self.0.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Add 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A scheduling-dependent value (last-write or running-max semantics).
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Set the gauge to `v`.
    #[inline]
    pub fn set(&self, v: u64) {
        if COMPILED_IN {
            self.0.store(v, Ordering::Relaxed);
        }
    }

    /// Raise the gauge to `v` if larger (high-water-mark semantics).
    #[inline]
    pub fn set_max(&self, v: u64) {
        if COMPILED_IN {
            self.0.fetch_max(v, Ordering::Relaxed);
        }
    }

    /// Add `n` (running-total semantics for nondeterministic counts,
    /// e.g. work steals).
    #[inline]
    pub fn add(&self, n: u64) {
        if COMPILED_IN {
            self.0.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[derive(Debug)]
struct HistogramInner {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for HistogramInner {
    fn default() -> HistogramInner {
        HistogramInner {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

/// A power-of-two-bucketed distribution (typically nanoseconds).
#[derive(Debug, Clone, Default)]
pub struct Histogram(Arc<HistogramInner>);

impl Histogram {
    /// A standalone histogram (adopt it into a registry with
    /// [`MetricsRegistry::adopt_histogram`] to have it appear in
    /// snapshots).
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Record one observation of `v`.
    #[inline]
    pub fn record(&self, v: u64) {
        if !COMPILED_IN {
            return;
        }
        let idx = (64 - u64::leading_zeros(v.max(1)) as usize - 1).min(HISTOGRAM_BUCKETS - 1);
        self.0.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.0.count.fetch_add(1, Ordering::Relaxed);
        self.0.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Record a duration in nanoseconds.
    #[inline]
    pub fn record_duration(&self, d: Duration) {
        self.record(d.as_nanos() as u64);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of observations.
    pub fn sum(&self) -> u64 {
        self.0.sum.load(Ordering::Relaxed)
    }

    /// Non-empty `(bucket_ceiling, count)` pairs, ascending.
    pub fn buckets(&self) -> Vec<(u64, u64)> {
        self.0
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(i, c)| {
                let n = c.load(Ordering::Relaxed);
                (n > 0).then(|| (1u64 << i, n))
            })
            .collect()
    }
}

#[derive(Debug, Default)]
struct SpanStat {
    total_ns: AtomicU64,
    count: AtomicU64,
    /// Wall-clock spent inside spans entered while this one was the
    /// innermost open span on its thread — the subtrahend of self-time.
    child_ns: AtomicU64,
}

thread_local! {
    /// The stack of currently-open spans on this thread: a dropped span
    /// attributes its elapsed time to the span below it, so profiles
    /// know each span's *self*-time regardless of metric names.
    static SPAN_STACK: RefCell<Vec<Arc<SpanStat>>> = const { RefCell::new(Vec::new()) };
}

/// A handle to one named span's aggregate (total wall-clock + count +
/// child time), plus the trace-slice context when a recorder is
/// attached to the owning registry.
#[derive(Debug, Clone, Default)]
pub struct SpanHandle {
    stat: Arc<SpanStat>,
    trace: Option<(Arc<str>, Arc<TraceRecorder>)>,
}

impl SpanHandle {
    /// Enter the span: returns a guard that, on drop, adds the elapsed
    /// wall-clock to the aggregate, attributes it as child time to the
    /// enclosing open span on this thread, and (with a tracer attached)
    /// records a timeline slice.
    #[inline]
    pub fn enter(&self) -> Span {
        let start = COMPILED_IN.then(Instant::now);
        if start.is_some() {
            SPAN_STACK.with(|s| s.borrow_mut().push(Arc::clone(&self.stat)));
        }
        Span { stat: Arc::clone(&self.stat), trace: self.trace.clone(), start }
    }

    /// Fold a pre-measured duration (and `count` entries) into the
    /// aggregate — the export path for subsystems that time themselves
    /// with plain atomics (e.g. the job pool). No child attribution, no
    /// trace slice: the measurement happened outside any span scope.
    pub fn add(&self, count: u64, total: Duration) {
        if COMPILED_IN {
            self.stat.total_ns.fetch_add(total.as_nanos() as u64, Ordering::Relaxed);
            self.stat.count.fetch_add(count, Ordering::Relaxed);
        }
    }

    /// Total recorded wall-clock.
    pub fn total(&self) -> Duration {
        Duration::from_nanos(self.stat.total_ns.load(Ordering::Relaxed))
    }

    /// Wall-clock attributed to spans nested inside this one.
    pub fn child_total(&self) -> Duration {
        Duration::from_nanos(self.stat.child_ns.load(Ordering::Relaxed))
    }

    /// Number of recorded entries.
    pub fn count(&self) -> u64 {
        self.stat.count.load(Ordering::Relaxed)
    }
}

/// An entered span; leaving scope (or [`Span::exit`]) records the
/// elapsed monotonic-clock duration into the handle's aggregate (and
/// the enclosing span's child time, and the trace timeline).
#[derive(Debug)]
pub struct Span {
    stat: Arc<SpanStat>,
    trace: Option<(Arc<str>, Arc<TraceRecorder>)>,
    start: Option<Instant>,
}

impl Span {
    /// Explicitly end the span (equivalent to dropping it).
    pub fn exit(self) {}
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(start) = self.start else { return };
        let elapsed = start.elapsed();
        let ns = elapsed.as_nanos() as u64;
        self.stat.total_ns.fetch_add(ns, Ordering::Relaxed);
        self.stat.count.fetch_add(1, Ordering::Relaxed);
        SPAN_STACK.with(|s| {
            let mut stack = s.borrow_mut();
            stack.pop(); // this span's own frame (guards drop LIFO)
            if let Some(parent) = stack.last() {
                parent.child_ns.fetch_add(ns, Ordering::Relaxed);
            }
        });
        if let Some((name, tracer)) = &self.trace {
            tracer.record_complete(name, current_lane(), start, elapsed);
        }
    }
}

#[derive(Debug, Clone)]
enum Slot {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
    Span(SpanHandle),
    TimeSeries(TimeSeries),
}

/// The registry of named metrics (see the module docs).
///
/// Thread-safe and shared by `Arc`: campaign jobs, pool workers and
/// embedded sessions all write through cloned handles. One registry per
/// campaign — or, in a multi-tenant server, one per tenant session
/// (`SessionBuilder::with_metrics` takes an `Arc`, so a host hands each
/// session its own).
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    slots: Mutex<BTreeMap<String, Slot>>,
    tracer: Mutex<Option<Arc<TraceRecorder>>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// A fresh registry behind an `Arc` (the shape every attachment
    /// point takes).
    pub fn shared() -> Arc<MetricsRegistry> {
        Arc::new(MetricsRegistry::new())
    }

    /// Attach a trace recorder: every span resolved *after* this call
    /// additionally records a timeline slice per entry. Attach before
    /// handing the registry to any session — handles resolved earlier
    /// keep aggregating without tracing.
    pub fn set_tracer(&self, tracer: Arc<TraceRecorder>) {
        *self.tracer.lock().expect("metrics registry poisoned") = Some(tracer);
    }

    /// The attached trace recorder, if any.
    pub fn tracer(&self) -> Option<Arc<TraceRecorder>> {
        self.tracer.lock().expect("metrics registry poisoned").clone()
    }

    fn slot(&self, name: &str, mk: impl FnOnce() -> Slot) -> Slot {
        let mut slots = self.slots.lock().expect("metrics registry poisoned");
        slots.entry(name.to_string()).or_insert_with(mk).clone()
    }

    /// Get or create the counter `name`.
    ///
    /// # Panics
    /// Panics if `name` is already registered as a different kind.
    pub fn counter(&self, name: &str) -> Counter {
        match self.slot(name, || Slot::Counter(Counter::default())) {
            Slot::Counter(c) => c,
            _ => panic!("metric `{name}` is not a counter"),
        }
    }

    /// Get or create the gauge `name`.
    ///
    /// # Panics
    /// Panics if `name` is already registered as a different kind.
    pub fn gauge(&self, name: &str) -> Gauge {
        match self.slot(name, || Slot::Gauge(Gauge::default())) {
            Slot::Gauge(g) => g,
            _ => panic!("metric `{name}` is not a gauge"),
        }
    }

    /// Get or create the histogram `name`.
    ///
    /// # Panics
    /// Panics if `name` is already registered as a different kind.
    pub fn histogram(&self, name: &str) -> Histogram {
        match self.slot(name, || Slot::Histogram(Histogram::default())) {
            Slot::Histogram(h) => h,
            _ => panic!("metric `{name}` is not a histogram"),
        }
    }

    /// Get or create the span `name`.
    ///
    /// # Panics
    /// Panics if `name` is already registered as a different kind.
    pub fn span(&self, name: &str) -> SpanHandle {
        let trace = self
            .tracer
            .lock()
            .expect("metrics registry poisoned")
            .as_ref()
            .map(|t| (Arc::<str>::from(name), Arc::clone(t)));
        match self.slot(name, || Slot::Span(SpanHandle { stat: Arc::default(), trace })) {
            Slot::Span(s) => s,
            _ => panic!("metric `{name}` is not a span"),
        }
    }

    /// Get or create the **deterministic** time-series `name` (exported
    /// in the `timeseries` group; samples must be simulated-work
    /// quantities recorded at session-local interval indices).
    ///
    /// # Panics
    /// Panics if `name` is already registered as a different kind.
    pub fn time_series(&self, name: &str) -> TimeSeries {
        match self.slot(name, || Slot::TimeSeries(TimeSeries::new(false))) {
            Slot::TimeSeries(ts) if !ts.is_wall() => ts,
            Slot::TimeSeries(_) => panic!("metric `{name}` is a wall-clock time-series"),
            _ => panic!("metric `{name}` is not a time-series"),
        }
    }

    /// Get or create the **wall-clock** time-series `name` (exported in
    /// the `timeseries_wall` group, outside every byte-compared
    /// surface).
    ///
    /// # Panics
    /// Panics if `name` is already registered as a different kind.
    pub fn wall_time_series(&self, name: &str) -> TimeSeries {
        match self.slot(name, || Slot::TimeSeries(TimeSeries::new(true))) {
            Slot::TimeSeries(ts) if ts.is_wall() => ts,
            Slot::TimeSeries(_) => panic!("metric `{name}` is a deterministic time-series"),
            _ => panic!("metric `{name}` is not a time-series"),
        }
    }

    /// Register an externally-owned histogram under `name` (subsystems
    /// that measure before a registry exists, e.g. the job pool).
    pub fn adopt_histogram(&self, name: &str, h: &Histogram) {
        let mut slots = self.slots.lock().expect("metrics registry poisoned");
        slots.insert(name.to_string(), Slot::Histogram(h.clone()));
    }

    /// A point-in-time copy of every metric, sorted by name.
    pub fn snapshot(&self) -> Snapshot {
        let slots = self.slots.lock().expect("metrics registry poisoned");
        let mut s = Snapshot::default();
        for (name, slot) in slots.iter() {
            match slot {
                Slot::Counter(c) => s.counters.push((name.clone(), c.get())),
                Slot::Gauge(g) => s.gauges.push((name.clone(), g.get())),
                Slot::Histogram(h) => s.histograms.push((
                    name.clone(),
                    HistogramSnapshot { count: h.count(), sum: h.sum(), buckets: h.buckets() },
                )),
                Slot::Span(sp) => s.spans.push(SpanSnapshot {
                    name: name.clone(),
                    count: sp.count(),
                    total: sp.total(),
                    child: sp.child_total(),
                }),
                Slot::TimeSeries(ts) => {
                    let dest =
                        if ts.is_wall() { &mut s.timeseries_wall } else { &mut s.timeseries };
                    dest.push((name.clone(), ts.snapshot()));
                }
            }
        }
        s
    }
}

/// One span's aggregate in a [`Snapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanSnapshot {
    /// Registered span name.
    pub name: String,
    /// Times entered.
    pub count: u64,
    /// Total wall-clock across entries.
    pub total: Duration,
    /// Wall-clock spent inside nested spans (runtime nesting, not name
    /// prefixes): `total - child` is this span's self-time.
    pub child: Duration,
}

impl SpanSnapshot {
    /// Wall-clock spent in this span itself, with nested spans
    /// subtracted out (clamped at zero: child time measured by separate
    /// clock reads can overshoot the parent's by nanoseconds).
    pub fn self_time(&self) -> Duration {
        self.total.saturating_sub(self.child)
    }
}

/// One histogram's state in a [`Snapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Number of observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: u64,
    /// Non-empty `(bucket_ceiling, count)` pairs, ascending.
    pub buckets: Vec<(u64, u64)>,
}

impl HistogramSnapshot {
    /// The `p`-th percentile (0 < p ≤ 100) as the **power-of-two label
    /// of the bucket** holding the rank-⌈p/100·count⌉ observation
    /// (bucket `2^i` counts values in `2^i..2^(i+1)`, so the result is
    /// within 2× of the true value — the resolution the buckets carry).
    /// `None` on an empty histogram. Observations beyond the last
    /// bucket saturate into it, so the result never exceeds
    /// `2^(HISTOGRAM_BUCKETS - 1)`.
    pub fn percentile(&self, p: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((p / 100.0 * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for &(ceiling, n) in &self.buckets {
            seen += n;
            if seen >= rank {
                return Some(ceiling);
            }
        }
        self.buckets.last().map(|&(ceiling, _)| ceiling)
    }

    /// The (p50, p90, p99) triple ((0, 0, 0) on an empty histogram) —
    /// the shape the JSON sinks and the profile table print.
    pub fn percentiles(&self) -> (u64, u64, u64) {
        (
            self.percentile(50.0).unwrap_or(0),
            self.percentile(90.0).unwrap_or(0),
            self.percentile(99.0).unwrap_or(0),
        )
    }
}

/// A point-in-time copy of a registry, sorted by metric name.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Snapshot {
    /// Deterministic counters (name, value).
    pub counters: Vec<(String, u64)>,
    /// Scheduling-dependent gauges (name, value).
    pub gauges: Vec<(String, u64)>,
    /// Span aggregates.
    pub spans: Vec<SpanSnapshot>,
    /// Histograms.
    pub histograms: Vec<(String, HistogramSnapshot)>,
    /// Deterministic interval-indexed time-series.
    pub timeseries: Vec<(String, TimeSeriesSnapshot)>,
    /// Wall-clock interval-indexed time-series.
    pub timeseries_wall: Vec<(String, TimeSeriesSnapshot)>,
}

pub(crate) fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn push_pairs(out: &mut String, pairs: &[(String, u64)], indent: &str) {
    out.push('{');
    for (i, (k, v)) in pairs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('\n');
        out.push_str(indent);
        out.push_str("  ");
        push_json_str(out, k);
        out.push_str(": ");
        out.push_str(&v.to_string());
    }
    if !pairs.is_empty() {
        out.push('\n');
        out.push_str(indent);
    }
    out.push('}');
}

fn push_timeseries(out: &mut String, series: &[(String, TimeSeriesSnapshot)], indent: &str) {
    out.push('{');
    for (i, (name, ts)) in series.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('\n');
        out.push_str(indent);
        out.push_str("  ");
        push_json_str(out, name);
        let max_index = ts.max_index.map(|m| m.to_string()).unwrap_or_else(|| "null".to_string());
        out.push_str(&format!(
            ": {{\"samples\": {}, \"max_index\": {max_index}, \"capacity\": {}, \"bins\": [",
            ts.samples, ts.capacity
        ));
        for (j, b) in ts.bins.iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            out.push_str(&b.to_string());
        }
        out.push_str("]}");
    }
    if !series.is_empty() {
        out.push('\n');
        out.push_str(indent);
    }
    out.push('}');
}

impl Snapshot {
    /// The **deterministic sink**: counters only, stable (sorted) key
    /// order, integer values — byte-identical across `--jobs N` and
    /// suitable for test/CI diffing.
    pub fn counters_json(&self) -> String {
        let mut out = String::new();
        push_pairs(&mut out, &self.counters, "");
        out.push('\n');
        out
    }

    /// The deterministic **time-series sink**: the `timeseries` group
    /// alone, stable key order — like [`Snapshot::counters_json`],
    /// byte-identical across `--jobs N` (bins aggregate by
    /// session-local interval index with order-free sums). The
    /// wall-clock `timeseries_wall` group is deliberately absent.
    pub fn timeseries_json(&self) -> String {
        let mut out = String::new();
        push_timeseries(&mut out, &self.timeseries, "");
        out.push('\n');
        out
    }

    /// The **full sink**: counters, gauges, span timings (total, child
    /// and derived self-time), histograms with p50/p90/p99, and both
    /// time-series groups (wall-clock-dependent — for
    /// `results/<figure>.metrics.json` and the run record, never for
    /// byte-diffed `data` sections).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"counters\": ");
        push_pairs(&mut out, &self.counters, "  ");
        out.push_str(",\n  \"gauges\": ");
        push_pairs(&mut out, &self.gauges, "  ");
        out.push_str(",\n  \"spans\": {");
        for (i, s) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    ");
            push_json_str(&mut out, &s.name);
            out.push_str(&format!(
                ": {{\"count\": {}, \"total_secs\": {:.6}, \"self_secs\": {:.6}}}",
                s.count,
                s.total.as_secs_f64(),
                s.self_time().as_secs_f64()
            ));
        }
        if !self.spans.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("},\n  \"histograms\": {");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    ");
            push_json_str(&mut out, name);
            let (p50, p90, p99) = h.percentiles();
            out.push_str(&format!(
                ": {{\"count\": {}, \"sum\": {}, \"p50\": {p50}, \"p90\": {p90}, \
                 \"p99\": {p99}, \"buckets\": [",
                h.count, h.sum
            ));
            for (j, (ceil, n)) in h.buckets.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!("[{ceil}, {n}]"));
            }
            out.push_str("]}");
        }
        if !self.histograms.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("},\n  \"timeseries\": ");
        push_timeseries(&mut out, &self.timeseries, "  ");
        out.push_str(",\n  \"timeseries_wall\": ");
        push_timeseries(&mut out, &self.timeseries_wall, "  ");
        out.push_str("\n}\n");
        out
    }

    /// Value of counter `name`, if present.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.iter().find(|(k, _)| k == name).map(|(_, v)| *v)
    }

    /// Sum of all counters under a dotted `group.` prefix.
    pub fn group_total(&self, group: &str) -> u64 {
        let prefix = format!("{group}.");
        self.counters.iter().filter(|(k, _)| k.starts_with(&prefix)).map(|(_, v)| v).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_snapshot_sorted() {
        let r = MetricsRegistry::new();
        r.counter("b.two").add(2);
        r.counter("a.one").inc();
        r.counter("b.two").add(3);
        let s = r.snapshot();
        assert_eq!(s.counters, vec![("a.one".to_string(), 1), ("b.two".to_string(), 5)]);
        assert_eq!(s.counter("b.two"), Some(5));
        assert_eq!(s.counter("missing"), None);
        assert_eq!(s.group_total("b"), 5);
    }

    #[test]
    fn counters_json_is_deterministic_regardless_of_registration_order() {
        let a = MetricsRegistry::new();
        a.counter("x").add(1);
        a.counter("m").add(2);
        let b = MetricsRegistry::new();
        b.counter("m").add(2);
        b.counter("x").add(1);
        assert_eq!(a.snapshot().counters_json(), b.snapshot().counters_json());
        assert!(a.snapshot().counters_json().contains("\"m\": 2"));
    }

    #[test]
    fn gauges_keep_max_and_running_totals() {
        let r = MetricsRegistry::new();
        let g = r.gauge("pool.depth_hwm");
        g.set_max(4);
        g.set_max(2);
        assert_eq!(g.get(), 4);
        let s = r.gauge("pool.steals");
        s.add(3);
        s.add(2);
        assert_eq!(s.get(), 5);
        let snap = r.snapshot();
        assert!(snap.counters.is_empty(), "gauges are not counters");
        assert_eq!(snap.gauges.len(), 2);
    }

    #[test]
    fn spans_aggregate_duration_and_count() {
        let r = MetricsRegistry::new();
        let h = r.span("phase.x");
        for _ in 0..3 {
            let _guard = h.enter();
            std::hint::black_box(42);
        }
        h.add(2, Duration::from_millis(5));
        assert_eq!(h.count(), 5);
        assert!(h.total() >= Duration::from_millis(5));
        let snap = r.snapshot();
        assert_eq!(snap.spans.len(), 1);
        assert_eq!(snap.spans[0].count, 5);
    }

    #[test]
    fn nested_spans_attribute_child_time_to_the_enclosing_span() {
        let r = MetricsRegistry::new();
        let outer = r.span("outer");
        let inner = r.span("inner.work"); // no name relation required
        {
            let _o = outer.enter();
            for _ in 0..4 {
                let _i = inner.enter();
                std::thread::sleep(Duration::from_millis(1));
            }
        }
        assert_eq!(outer.child_total() > Duration::ZERO, COMPILED_IN);
        assert!(outer.child_total() <= outer.total(), "child time nests inside the parent");
        assert_eq!(inner.child_total(), Duration::ZERO, "leaf spans have no children");
        let snap = r.snapshot();
        let o = snap.spans.iter().find(|s| s.name == "outer").unwrap();
        assert_eq!(o.self_time(), o.total - o.child);
        // Sibling guards in one scope drop LIFO, matching the stack.
        {
            let _a = outer.enter();
            let _b = inner.enter();
        }
        // A span measured outside any scope attributes nothing.
        inner.add(1, Duration::from_millis(3));
        assert_eq!(outer.child_total() <= outer.total(), true);
    }

    #[test]
    fn spans_record_trace_slices_when_a_tracer_is_attached() {
        let r = MetricsRegistry::new();
        let tracer = TraceRecorder::shared();
        r.set_tracer(Arc::clone(&tracer));
        assert!(r.tracer().is_some());
        {
            let _g = r.span("traced.phase").enter();
        }
        assert_eq!(tracer.len(), usize::from(COMPILED_IN));
        if COMPILED_IN {
            assert!(tracer.to_json().contains("traced.phase"));
        }
    }

    #[test]
    fn histograms_bucket_by_power_of_two() {
        let h = Histogram::new();
        h.record(0); // clamped into bucket 0 (ceiling 1)
        h.record(1);
        h.record(2);
        h.record(3);
        h.record(1024);
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 1030);
        assert_eq!(h.buckets(), vec![(1, 2), (2, 2), (1024, 1)]);
        let r = MetricsRegistry::new();
        r.adopt_histogram("pool.job_ns", &h);
        assert_eq!(r.snapshot().histograms.len(), 1);
    }

    #[test]
    fn percentiles_follow_bucket_boundaries() {
        // 10 observations: 8 in bucket ceiling 2, 2 in ceiling 1024.
        let h = Histogram::new();
        for _ in 0..8 {
            h.record(2);
        }
        h.record(600);
        h.record(1000); // both land in bucket 512..1024
        let snap = HistogramSnapshot { count: h.count(), sum: h.sum(), buckets: h.buckets() };
        assert_eq!(snap.percentile(50.0), Some(2)); // rank 5 of 10
        assert_eq!(snap.percentile(80.0), Some(2)); // rank 8: last in the low bucket
        assert_eq!(snap.percentile(90.0), Some(512)); // rank 9 crosses into 512..1024
        assert_eq!(snap.percentile(99.0), Some(512));
        assert_eq!(snap.percentiles(), (2, 512, 512));
    }

    #[test]
    fn percentile_of_an_empty_histogram_is_none() {
        let snap = HistogramSnapshot { count: 0, sum: 0, buckets: vec![] };
        assert_eq!(snap.percentile(50.0), None);
        assert_eq!(snap.percentiles(), (0, 0, 0));
    }

    #[test]
    fn percentile_of_a_single_sample_is_its_bucket_label() {
        let h = Histogram::new();
        h.record(300); // bucket 256..512: label 256
        let snap = HistogramSnapshot { count: h.count(), sum: h.sum(), buckets: h.buckets() };
        for p in [1.0, 50.0, 99.0, 100.0] {
            assert_eq!(snap.percentile(p), Some(256), "p{p}");
        }
    }

    #[test]
    fn percentile_saturates_at_the_top_bucket() {
        let h = Histogram::new();
        h.record(u64::MAX); // far past 2^47: clamps into the last bucket
        h.record(u64::MAX / 2);
        let snap = HistogramSnapshot { count: h.count(), sum: h.sum(), buckets: h.buckets() };
        let top = 1u64 << (HISTOGRAM_BUCKETS - 1);
        assert_eq!(snap.percentile(50.0), Some(top));
        assert_eq!(snap.percentile(99.0), Some(top));
    }

    #[test]
    fn time_series_kinds_are_enforced_and_snapshot_into_their_groups() {
        let r = MetricsRegistry::new();
        r.time_series("ts.a").record(0, 3);
        r.wall_time_series("tsw.b").record(1, 7);
        // Same name returns the same series.
        r.time_series("ts.a").record(0, 1);
        let snap = r.snapshot();
        assert_eq!(snap.timeseries.len(), 1);
        assert_eq!(snap.timeseries[0].0, "ts.a");
        assert_eq!(snap.timeseries[0].1.bins, vec![4]);
        assert_eq!(snap.timeseries_wall.len(), 1);
        assert_eq!(snap.timeseries_wall[0].1.max_index, Some(1));
        let ts_json = snap.timeseries_json();
        assert!(ts_json.contains("\"ts.a\""), "{ts_json}");
        assert!(!ts_json.contains("tsw.b"), "wall series stay out of the deterministic sink");
    }

    #[test]
    #[should_panic(expected = "is a wall-clock time-series")]
    fn time_series_wall_mismatch_panics() {
        let r = MetricsRegistry::new();
        r.wall_time_series("x");
        r.time_series("x");
    }

    #[test]
    fn same_name_returns_the_same_metric() {
        let r = MetricsRegistry::new();
        let a = r.counter("x");
        let b = r.counter("x");
        a.add(1);
        b.add(1);
        assert_eq!(r.counter("x").get(), 2);
    }

    #[test]
    #[should_panic(expected = "is not a gauge")]
    fn kind_mismatch_panics() {
        let r = MetricsRegistry::new();
        r.counter("x");
        r.gauge("x");
    }

    #[test]
    fn full_json_is_parseable_shape() {
        let r = MetricsRegistry::new();
        r.counter("a").add(1);
        r.gauge("g").set(2);
        r.span("s").add(1, Duration::from_micros(10));
        r.histogram("h").record(7);
        r.time_series("ts.x").record(0, 2);
        r.wall_time_series("tsw.y").record(0, 9);
        let j = r.snapshot().to_json();
        for key in [
            "\"counters\"",
            "\"gauges\"",
            "\"spans\"",
            "\"histograms\"",
            "total_secs",
            "self_secs",
            "\"p50\"",
            "\"p99\"",
            "\"timeseries\"",
            "\"timeseries_wall\"",
            "\"max_index\"",
        ] {
            assert!(j.contains(key), "missing {key} in {j}");
        }
        // Escaping: a hostile name must not break the document.
        let r2 = MetricsRegistry::new();
        r2.counter("we\"ird\\name").add(1);
        assert!(r2.snapshot().counters_json().contains("we\\\"ird\\\\name"));
    }
}
