//! Figure 7: GDP-O sensitivity analysis on the 4-core CMP — average
//! absolute RMS error of IPC estimates while varying (a) LLC size,
//! (b) LLC associativity, (c) DDR2 channel count, (d) DRAM interface,
//! (e) PRB entries, and (f) mixed H/M/L workloads.

use gdp_bench::{banner, class_workloads, Scale, SWEEP_SEED};
use gdp_experiments::{evaluate_workload_subset, ExperimentConfig, Technique};
use gdp_metrics::mean;
use gdp_sim::DramConfig;
use gdp_workloads::{generate_mixed_workloads, LlcClass, MixPattern, Workload};

/// GDP-O average IPC RMS error over one class of workloads under `xcfg`.
fn gdpo_error(workloads: &[Workload], xcfg: &ExperimentConfig) -> f64 {
    let mut errs = Vec::new();
    for w in workloads {
        let r = evaluate_workload_subset(w, xcfg, &[Technique::GdpO]);
        for b in &r.benches {
            let i = Technique::ALL.iter().position(|t| *t == Technique::GdpO).unwrap();
            if !b.ipc_err[i].is_empty() {
                errs.push(b.ipc_err[i].rms_abs());
            }
        }
    }
    mean(&errs)
}

fn classes() -> [LlcClass; 3] {
    [LlcClass::H, LlcClass::M, LlcClass::L]
}

fn sweep(title: &str, scale: Scale, variants: &[(&str, Box<dyn Fn(&mut ExperimentConfig)>)]) {
    println!("\n{title}");
    print!("{:8}", "class");
    for (label, _) in variants {
        print!(" {:>10}", label);
    }
    println!();
    for class in classes() {
        let workloads = class_workloads(4, class, scale);
        print!("4c-{class:6}");
        for (_, tweak) in variants {
            let mut xcfg = scale.xcfg(4);
            tweak(&mut xcfg);
            print!(" {:>10.4}", gdpo_error(&workloads, &xcfg));
        }
        println!();
        eprintln!("[fig7] {title}: finished {class}");
    }
}

fn main() {
    let scale = Scale::from_args();
    banner("Figure 7: GDP-O sensitivity analysis (4-core)", scale);

    // (a) LLC size (scaled analogues of the paper's 4/8/16 MB).
    sweep(
        "(a) LLC size (scaled: 512 KB / 1 MB / 2 MB)",
        scale,
        &[
            ("512KB", Box::new(|x: &mut ExperimentConfig| x.sim.llc.size_bytes = 512 << 10)),
            ("1MB", Box::new(|_| {})),
            ("2MB", Box::new(|x: &mut ExperimentConfig| x.sim.llc.size_bytes = 2 << 20)),
        ],
    );

    // (b) LLC associativity.
    sweep(
        "(b) LLC associativity",
        scale,
        &[
            ("16", Box::new(|_| {})),
            ("32", Box::new(|x: &mut ExperimentConfig| x.sim.llc.ways = 32)),
            ("64", Box::new(|x: &mut ExperimentConfig| x.sim.llc.ways = 64)),
        ],
    );

    // (c) DDR2 channels.
    sweep(
        "(c) DDR2 channels",
        scale,
        &[
            ("1", Box::new(|_| {})),
            ("2", Box::new(|x: &mut ExperimentConfig| x.sim.dram = DramConfig::ddr2_800(2))),
            ("4", Box::new(|x: &mut ExperimentConfig| x.sim.dram = DramConfig::ddr2_800(4))),
        ],
    );

    // (d) DRAM interface.
    sweep(
        "(d) DRAM interface",
        scale,
        &[
            ("DDR2", Box::new(|_| {})),
            ("DDR4", Box::new(|x: &mut ExperimentConfig| x.sim.dram = DramConfig::ddr4_2666(1))),
        ],
    );

    // (e) PRB entries.
    sweep(
        "(e) PRB entries",
        scale,
        &[
            ("8", Box::new(|x: &mut ExperimentConfig| x.prb_entries = 8)),
            ("16", Box::new(|x: &mut ExperimentConfig| x.prb_entries = 16)),
            ("32", Box::new(|_| {})),
            ("64", Box::new(|x: &mut ExperimentConfig| x.prb_entries = 64)),
            ("1024", Box::new(|x: &mut ExperimentConfig| x.prb_entries = 1024)),
        ],
    );

    // (f) Mixed workloads.
    println!("\n(f) mixed workloads (GDP-O avg abs RMS IPC error)");
    let count = if scale == Scale::Full { 10 } else { 3 };
    let xcfg = scale.xcfg(4);
    for pat in [MixPattern::Hhml, MixPattern::Hmml, MixPattern::Hmll] {
        let ws = generate_mixed_workloads(pat, count, SWEEP_SEED);
        println!("4c-{:6} {:>10.4}", pat.name(), gdpo_error(&ws, &xcfg));
        eprintln!("[fig7] mixes: finished {}", pat.name());
    }

    println!(
        "\nPaper reference (Fig. 7): GDP-O accuracy is high and stable across all \
         parameters; H-workloads need ≥32 PRB entries; error shrinks or stays flat \
         as resources grow."
    );
}
