//! Figure 7: sensitivity analysis on the 4-core CMP — average absolute
//! RMS error of IPC estimates while varying (a) LLC size, (b) LLC
//! associativity, (c) DDR2 channel count, (d) DRAM interface, (e) PRB
//! entries, and (f) mixed H/M/L workloads.
//!
//! The paper studies GDP-O (the default selection); `--techniques`
//! re-runs the same sweeps for any registered technique subset — each
//! selected technique gets its own table block and JSON column.

use gdp_bench::{banner, class_workloads, BenchArgs, Scale, SWEEP_SEED};
use gdp_experiments::{evaluate_workload_traced, CampaignTraces, ExperimentConfig, Technique};
use gdp_metrics::mean;
use gdp_runner::{Json, Progress};
use gdp_sim::DramConfig;
use gdp_workloads::{generate_mixed_workloads, LlcClass, MixPattern, Workload};

type Tweak = Box<dyn Fn(&mut ExperimentConfig) + Send + Sync>;

/// One sensitivity sweep: a titled list of configuration variants.
struct Sweep {
    title: &'static str,
    variants: Vec<(&'static str, Tweak)>,
}

fn sweeps() -> Vec<Sweep> {
    vec![
        // (a) LLC size (scaled analogues of the paper's 4/8/16 MB).
        Sweep {
            title: "(a) LLC size (scaled: 512 KB / 1 MB / 2 MB)",
            variants: vec![
                ("512KB", Box::new(|x: &mut ExperimentConfig| x.sim.llc.size_bytes = 512 << 10)),
                ("1MB", Box::new(|_| {})),
                ("2MB", Box::new(|x: &mut ExperimentConfig| x.sim.llc.size_bytes = 2 << 20)),
            ],
        },
        Sweep {
            title: "(b) LLC associativity",
            variants: vec![
                ("16", Box::new(|_| {})),
                ("32", Box::new(|x: &mut ExperimentConfig| x.sim.llc.ways = 32)),
                ("64", Box::new(|x: &mut ExperimentConfig| x.sim.llc.ways = 64)),
            ],
        },
        Sweep {
            title: "(c) DDR2 channels",
            variants: vec![
                ("1", Box::new(|_| {})),
                ("2", Box::new(|x: &mut ExperimentConfig| x.sim.dram = DramConfig::ddr2_800(2))),
                ("4", Box::new(|x: &mut ExperimentConfig| x.sim.dram = DramConfig::ddr2_800(4))),
            ],
        },
        Sweep {
            title: "(d) DRAM interface",
            variants: vec![
                ("DDR2", Box::new(|_| {})),
                (
                    "DDR4",
                    Box::new(|x: &mut ExperimentConfig| x.sim.dram = DramConfig::ddr4_2666(1)),
                ),
            ],
        },
        Sweep {
            title: "(e) PRB entries",
            variants: vec![
                ("8", Box::new(|x: &mut ExperimentConfig| x.prb_entries = 8)),
                ("16", Box::new(|x: &mut ExperimentConfig| x.prb_entries = 16)),
                ("32", Box::new(|_| {})),
                ("64", Box::new(|x: &mut ExperimentConfig| x.prb_entries = 64)),
                ("1024", Box::new(|x: &mut ExperimentConfig| x.prb_entries = 1024)),
            ],
        },
    ]
}

fn classes() -> [LlcClass; 3] {
    [LlcClass::H, LlcClass::M, LlcClass::L]
}

/// JSON key for a technique's per-variant IPC-RMS object (stable across
/// the legacy single-technique layout: `gdp-o` → `gdpo_ipc_rms`).
fn ipc_rms_key(t: Technique) -> String {
    format!("{}_ipc_rms", t.id().replace('-', ""))
}

/// Per-benchmark absolute RMS IPC errors of one workload, one vector per
/// selected technique (routed through the trace cache when one is active
/// — every *distinct* configuration keys its own traces, so replays stay
/// exact; the identical baseline variants of the five sweeps share keys).
fn tech_errors(
    w: &Workload,
    xcfg: &ExperimentConfig,
    techniques: &[Technique],
    traces: Option<&CampaignTraces>,
) -> Vec<Vec<f64>> {
    let r = evaluate_workload_traced(w, xcfg, techniques, traces);
    techniques
        .iter()
        .map(|t| {
            let i = r.tech_index(*t).expect("evaluated technique");
            r.benches
                .iter()
                .filter(|b| !b.ipc_err[i].is_empty())
                .map(|b| b.ipc_err[i].rms_abs())
                .collect()
        })
        .collect()
}

fn main() {
    let args = BenchArgs::parse("fig7");
    let techniques = args.techniques_or(&[Technique::GDP_O]);
    let tech_names: Vec<&str> = techniques.iter().map(|t| t.name()).collect();
    let sweeps = sweeps();
    let per_class: Vec<(LlcClass, Vec<Workload>)> =
        classes().iter().map(|&c| (c, class_workloads(4, c, args.scale))).collect();
    let mix_count = if args.scale == Scale::Full { 10 } else { 3 };
    let mixes: Vec<(MixPattern, Vec<Workload>)> =
        [MixPattern::Hhml, MixPattern::Hmml, MixPattern::Hmll]
            .iter()
            .map(|&p| (p, generate_mixed_workloads(p, mix_count, SWEEP_SEED)))
            .collect();

    // Tweaked configurations, one per (sweep, variant).
    let variant_cfgs: Vec<Vec<ExperimentConfig>> = sweeps
        .iter()
        .map(|s| {
            s.variants
                .iter()
                .map(|(_, tweak)| {
                    let mut xcfg = args.scale.xcfg(4);
                    tweak(&mut xcfg);
                    xcfg
                })
                .collect()
        })
        .collect();
    let base_cfg = args.scale.xcfg(4);

    // Flatten (sweep × variant × class × workload) plus the mixed
    // workloads into one (workload, config, label) list — the single
    // source for the `--list` plan and the executed jobs, so the two
    // can never drift. Note sweeps (a)–(e) each carry a baseline
    // variant identical to the untweaked config: those jobs share one
    // set of cache keys, so under `--record --replay` only the first
    // simulates and the rest replay.
    let mut plan: Vec<(&Workload, &ExperimentConfig, String)> = Vec::new();
    for (sweep, cfgs) in sweeps.iter().zip(&variant_cfgs) {
        for ((vlabel, _), xcfg) in sweep.variants.iter().zip(cfgs) {
            for (class, workloads) in &per_class {
                for w in workloads {
                    plan.push((w, xcfg, format!("{}={vlabel} 4c-{class} {}", sweep.title, w.name)));
                }
            }
        }
    }
    for (pat, workloads) in &mixes {
        for w in workloads {
            plan.push((w, &base_cfg, format!("mix {} {}", pat.name(), w.name)));
        }
    }
    if args.list {
        let labels: Vec<String> = plan.iter().map(|(_, _, l)| l.clone()).collect();
        args.print_plan(&labels);
        return;
    }
    banner(
        &format!("Figure 7: {} sensitivity analysis (4-core)", tech_names.join("/")),
        args.scale,
    );

    let job_count = plan.len();
    let mut campaign = args.campaign();
    let progress = Progress::new(args.bin, job_count);
    let traces = args.traces();

    let jobs: Vec<_> = plan
        .iter()
        .map(|(w, xcfg, label)| {
            let progress = &progress;
            let traces = &traces;
            let techniques = &techniques;
            move || {
                let e = tech_errors(w, xcfg, techniques, traces.as_ref());
                progress.finish_item(label);
                e
            }
        })
        .collect();
    let mut results = args.pool().run(jobs).into_iter();

    // ---- reassemble in job order ----
    let nt = techniques.len();
    let mut data_sweeps = Vec::new();
    for sweep in &sweeps {
        // tables[tech][variant][class] = mean over the class's errors.
        let mut tables: Vec<Vec<Vec<f64>>> = vec![Vec::new(); nt];
        for _ in &sweep.variants {
            let mut per_class_errs: Vec<Vec<Vec<f64>>> = vec![Vec::new(); nt];
            for (_, workloads) in &per_class {
                let mut errs: Vec<Vec<f64>> = vec![Vec::new(); nt];
                for _ in workloads {
                    let per_tech = results.next().expect("one result per workload");
                    for (t, e) in per_tech.into_iter().enumerate() {
                        errs[t].extend(e);
                    }
                }
                for t in 0..nt {
                    per_class_errs[t].push(std::mem::take(&mut errs[t]));
                }
            }
            for t in 0..nt {
                tables[t].push(per_class_errs[t].iter().map(|e| mean(e)).collect());
            }
        }

        println!("\n{}", sweep.title);
        for (t, table) in tables.iter().enumerate() {
            if nt > 1 {
                println!("[{}]", tech_names[t]);
            }
            print!("{:8}", "class");
            for (label, _) in &sweep.variants {
                print!(" {:>10}", label);
            }
            println!();
            for (ci, (class, _)) in per_class.iter().enumerate() {
                print!("4c-{class:6}");
                for row in table {
                    print!(" {:>10.4}", row[ci]);
                }
                println!();
            }
        }
        let mut data_rows = Vec::new();
        for (ci, (class, _)) in per_class.iter().enumerate() {
            let mut fields = vec![("class".to_string(), Json::from(format!("{class}")))];
            for (t, table) in tables.iter().enumerate() {
                fields.push((
                    ipc_rms_key(techniques[t]),
                    Json::Obj(
                        sweep
                            .variants
                            .iter()
                            .zip(table)
                            .map(|((label, _), row)| (label.to_string(), Json::from(row[ci])))
                            .collect(),
                    ),
                ));
            }
            data_rows.push(Json::Obj(fields));
        }
        data_sweeps.push(Json::obj(vec![
            ("title", Json::from(sweep.title)),
            ("rows", Json::Arr(data_rows)),
        ]));
    }

    // (f) Mixed workloads.
    let mut data_mixes = Vec::new();
    let mut mix_errs: Vec<Vec<Vec<f64>>> = vec![vec![Vec::new(); nt]; mixes.len()];
    for (mi, (_, workloads)) in mixes.iter().enumerate() {
        for _ in workloads {
            let per_tech = results.next().expect("one result per mixed workload");
            for (t, e) in per_tech.into_iter().enumerate() {
                mix_errs[mi][t].extend(e);
            }
        }
    }
    for t in 0..nt {
        println!("\n(f) mixed workloads ({} avg abs RMS IPC error)", tech_names[t]);
        for (mi, (pat, _)) in mixes.iter().enumerate() {
            println!("4c-{:6} {:>10.4}", pat.name(), mean(&mix_errs[mi][t]));
        }
    }
    for (mi, (pat, _)) in mixes.iter().enumerate() {
        let mut fields = vec![("pattern".to_string(), Json::from(pat.name()))];
        for t in 0..nt {
            fields.push((ipc_rms_key(techniques[t]), Json::from(mean(&mix_errs[mi][t]))));
        }
        data_mixes.push(Json::Obj(fields));
    }

    println!(
        "\nPaper reference (Fig. 7): GDP-O accuracy is high and stable across all \
         parameters; H-workloads need ≥32 PRB entries; error shrinks or stays flat \
         as resources grow."
    );

    let data =
        Json::obj(vec![("sweeps", Json::Arr(data_sweeps)), ("mixes", Json::Arr(data_mixes))]);
    args.finish_campaign(&mut campaign, &progress, traces.as_ref());
    args.write_json(&campaign, job_count, data);
}
