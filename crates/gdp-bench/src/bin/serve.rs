//! serve: load driver and correctness harness for the `gdp-serve`
//! estimation-as-a-service subsystem.
//!
//! Records (or loads from the trace cache) one 2-core H-class shared
//! trace, starts a sharded serve instance, drives `--tenants N`
//! concurrent tenant sessions through it, and byte-verifies every
//! served row against the embedded `ReplaySession` oracle. Reports
//! sustained event throughput; exits non-zero on any row mismatch.
//!
//! `--kill-resume` additionally runs the evict/resume check: one
//! lock-step tenant is killed mid-stream, reconnects, must resume at
//! exactly the cut interval, and the concatenated rows must equal the
//! uninterrupted oracle bit for bit.
//!
//! `--rows-out DIR` writes `served.txt` / `embedded.txt` row dumps
//! (every float as raw bits) for tenant 1 — the CI smoke job byte-diffs
//! them.

use std::io::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use gdp_bench::{class_workloads, Scale, SWEEP_SEED};
use gdp_experiments::{
    record_shared, shared_trace_key_for, CoreInterval, ExperimentConfig, ReplaySession, Technique,
};
use gdp_runner::{Campaign, Json};
use gdp_serve::{
    serve_channel, serve_tcp, ChannelConnector, ClientError, ServeConfig, TenantClient,
};
use gdp_telemetry::MetricsRegistry;
use gdp_trace::{SharedTrace, TraceCache};
use gdp_workloads::LlcClass;

const USAGE: &str = "\
usage: serve [options]
  --tiny | --quick | --full   trace scale (default --tiny)
  --tenants N                 concurrent tenant sessions (default 64)
  --shards N                  server shard threads (default 2)
  --max-tenants N             admission capacity (default: tenants)
  --window N                  client pipelining window (default 4)
  --chunk N                   split client writes into N-byte chunks
  --tcp                       drive over TCP instead of in-process pipes
  --techniques a,b,c          technique set (default gdp,gdp-o)
  --kill-resume               kill one tenant mid-stream, verify resume
  --trace-dir DIR             shared-trace cache (default results/traces)
  --snapshot-dir DIR          tenant snapshot store (default: temp, removed)
  --rows-out DIR              write served/embedded row dumps for tenant 1
  --metrics-out PATH          write the serve.* metrics snapshot JSON
  --json                      write results/serve.json
  --quiet                     suppress stderr progress
  -h | --help                 this text";

struct Args {
    scale: Scale,
    tenants: usize,
    shards: usize,
    max_tenants: Option<usize>,
    window: usize,
    chunk: Option<usize>,
    tcp: bool,
    techniques: Vec<Technique>,
    kill_resume: bool,
    trace_dir: String,
    snapshot_dir: Option<String>,
    rows_out: Option<String>,
    metrics_out: Option<String>,
    json: bool,
    quiet: bool,
}

fn parse_args() -> Args {
    let mut a = Args {
        scale: Scale::Tiny,
        tenants: 64,
        shards: 2,
        max_tenants: None,
        window: 4,
        chunk: None,
        tcp: false,
        techniques: vec![Technique::GDP, Technique::GDP_O],
        kill_resume: false,
        trace_dir: "results/traces".into(),
        snapshot_dir: None,
        rows_out: None,
        metrics_out: None,
        json: false,
        quiet: false,
    };
    let mut it = std::env::args().skip(1);
    let value = |it: &mut dyn Iterator<Item = String>, flag: &str| {
        it.next().unwrap_or_else(|| {
            eprintln!("serve: {flag} needs a value\n{USAGE}");
            std::process::exit(2);
        })
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--tiny" => a.scale = Scale::Tiny,
            "--quick" => a.scale = Scale::Quick,
            "--full" => a.scale = Scale::Full,
            "--tenants" => a.tenants = parse_num(&value(&mut it, "--tenants"), "--tenants"),
            "--shards" => a.shards = parse_num(&value(&mut it, "--shards"), "--shards"),
            "--max-tenants" => {
                a.max_tenants = Some(parse_num(&value(&mut it, "--max-tenants"), "--max-tenants"))
            }
            "--window" => a.window = parse_num(&value(&mut it, "--window"), "--window"),
            "--chunk" => a.chunk = Some(parse_num(&value(&mut it, "--chunk"), "--chunk")),
            "--tcp" => a.tcp = true,
            "--techniques" => match Technique::parse_list(&value(&mut it, "--techniques")) {
                Ok(set) => a.techniques = set,
                Err(e) => {
                    eprintln!("serve: {e}");
                    std::process::exit(2);
                }
            },
            "--kill-resume" => a.kill_resume = true,
            "--trace-dir" => a.trace_dir = value(&mut it, "--trace-dir"),
            "--snapshot-dir" => a.snapshot_dir = Some(value(&mut it, "--snapshot-dir")),
            "--rows-out" => a.rows_out = Some(value(&mut it, "--rows-out")),
            "--metrics-out" => a.metrics_out = Some(value(&mut it, "--metrics-out")),
            "--json" => a.json = true,
            "--quiet" => a.quiet = true,
            "-h" | "--help" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => {
                eprintln!("serve: unknown flag {other:?}\n{USAGE}");
                std::process::exit(2);
            }
        }
    }
    if a.tenants == 0 || a.shards == 0 || a.window == 0 {
        eprintln!("serve: --tenants/--shards/--window must be >= 1");
        std::process::exit(2);
    }
    a
}

fn parse_num(s: &str, flag: &str) -> usize {
    s.parse().unwrap_or_else(|_| {
        eprintln!("serve: {flag} expects a number, got {s:?}");
        std::process::exit(2);
    })
}

/// Load the driver trace from the cache, recording it on a miss.
fn driver_trace(args: &Args, x: &ExperimentConfig) -> (SharedTrace, bool) {
    let w = &class_workloads(2, LlcClass::H, args.scale)[0];
    let cache = TraceCache::new(&args.trace_dir);
    let key = shared_trace_key_for(x, w, &args.techniques);
    if let Some(t) = cache.load_shared(&key) {
        return (t, true);
    }
    let (_, trace) = record_shared(w, x, &args.techniques);
    if let Err(e) = cache.store_shared(&key, &trace) {
        eprintln!("serve: cannot cache trace in {}: {e}", args.trace_dir);
    }
    (trace, false)
}

/// How each tenant thread dials the server.
#[derive(Clone)]
enum Dial {
    Channel(ChannelConnector),
    Tcp(String),
}

impl Dial {
    fn client(&self) -> Result<TenantClient, std::io::Error> {
        match self {
            Dial::Channel(c) => Ok(TenantClient::over(c.connect()?)),
            Dial::Tcp(addr) => TenantClient::connect_tcp(addr),
        }
    }
}

/// Bit-level row equality (no tolerance: the serving contract).
fn rows_bit_equal(a: &[Vec<CoreInterval>], b: &[Vec<CoreInterval>]) -> bool {
    fn core_eq(x: &CoreInterval, y: &CoreInterval) -> bool {
        x.instr_start == y.instr_start
            && x.instr_end == y.instr_end
            && x.stats == y.stats
            && x.lambda.to_bits() == y.lambda.to_bits()
            && x.shared_latency.to_bits() == y.shared_latency.to_bits()
            && x.estimates.len() == y.estimates.len()
            && x.estimates.iter().zip(&y.estimates).all(|(e, f)| {
                e.cpi.to_bits() == f.cpi.to_bits()
                    && e.sigma_sms.to_bits() == f.sigma_sms.to_bits()
                    && e.cpl == f.cpl
                    && e.overlap.to_bits() == f.overlap.to_bits()
            })
    }
    a.len() == b.len()
        && a.iter()
            .zip(b)
            .all(|(ra, rb)| ra.len() == rb.len() && ra.iter().zip(rb).all(|(x, y)| core_eq(x, y)))
}

/// Deterministic text dump of rows, every float as raw bits (the
/// byte-diff surface of the CI smoke job).
fn dump_rows(rows: &[Vec<CoreInterval>]) -> String {
    let mut out = String::new();
    for (i, row) in rows.iter().enumerate() {
        for (c, iv) in row.iter().enumerate() {
            out += &format!(
                "iv {i} core {c}: instr {}..{} lambda {:016x} shared {:016x} stats {:?}\n",
                iv.instr_start,
                iv.instr_end,
                iv.lambda.to_bits(),
                iv.shared_latency.to_bits(),
                iv.stats
            );
            for (e, est) in iv.estimates.iter().enumerate() {
                out += &format!(
                    "  est {e}: cpi {:016x} sigma {:016x} cpl {} overlap {:016x}\n",
                    est.cpi.to_bits(),
                    est.sigma_sms.to_bits(),
                    est.cpl,
                    est.overlap.to_bits()
                );
            }
        }
    }
    out
}

/// Reconnect `tenant`, retrying while the killed connection's hangup is
/// still being checkpointed.
fn reconnect(
    dial: &Dial,
    tenant: u64,
    cores: usize,
    set: &[Technique],
) -> Result<(TenantClient, u64), String> {
    for _ in 0..2000 {
        let mut c = dial.client().map_err(|e| format!("dial: {e}"))?;
        match c.hello(tenant, cores, set) {
            Ok((at, _)) => return Ok((c, at)),
            Err(ClientError::Server(m)) if m.contains("already connected") => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(e) => return Err(format!("reconnect: {e}")),
        }
    }
    Err("tenant slot never released".into())
}

/// The evict/resume check: lock-step to the cut, kill, reconnect,
/// verify the resume position and the concatenated bits.
fn kill_resume_check(
    dial: &Dial,
    tenant: u64,
    trace: &SharedTrace,
    set: &[Technique],
    embedded: &[Vec<CoreInterval>],
) -> Result<u64, String> {
    let n = trace.intervals.len();
    let k = n / 2;
    if k == 0 {
        return Err("trace too short for a kill/resume cut".into());
    }
    let mut c = dial.client().map_err(|e| format!("dial: {e}"))?;
    let (at, _) = c.hello(tenant, trace.cores, set).map_err(|e| format!("hello: {e}"))?;
    if at != 0 {
        return Err(format!("fresh tenant resumed at {at}"));
    }
    let mut rows = Vec::with_capacity(n);
    for iv in &trace.intervals[..k] {
        c.send_interval(iv).map_err(|e| format!("send: {e}"))?;
        rows.push(c.recv_row().map_err(|e| format!("row: {e}"))?.1);
    }
    c.kill();
    let (mut c, at) = reconnect(dial, tenant, trace.cores, set)?;
    if at != k as u64 {
        return Err(format!("resumed at {at}, expected {k}"));
    }
    rows.extend(c.stream(&trace.intervals[k..], 2).map_err(|e| format!("tail: {e}"))?);
    if !rows_bit_equal(&rows, embedded) {
        return Err("resumed rows diverge from the embedded session".into());
    }
    Ok(k as u64)
}

fn main() {
    let args = parse_args();
    let cores = 2;
    let x = args.scale.xcfg(cores);
    let set = args.techniques.clone();

    let (trace, cached) = driver_trace(&args, &x);
    let n = trace.intervals.len();
    let events_per_tenant: u64 = trace.intervals.iter().map(|iv| iv.events.len() as u64).sum();
    let embedded = Arc::new(ReplaySession::new(&trace, &x, &set).into_report().intervals);
    let trace = Arc::new(trace);
    if !args.quiet {
        eprintln!(
            "[serve] trace: {} ({n} intervals, {events_per_tenant} events) [{}]",
            trace.workload,
            if cached { "cached" } else { "recorded" }
        );
    }

    // Snapshot store: explicit dir, or a private temp one (removed on
    // exit) so kill-resume and drain always have somewhere to land.
    let (snapshot_dir, snapshot_is_temp) = match &args.snapshot_dir {
        Some(d) => (std::path::PathBuf::from(d), false),
        None => {
            (std::env::temp_dir().join(format!("gdp-serve-driver-{}", std::process::id())), true)
        }
    };

    let registry = MetricsRegistry::shared();
    let mut cfg = ServeConfig::new(x.clone());
    cfg.shards = args.shards;
    cfg.max_tenants = args.max_tenants.unwrap_or(args.tenants.max(1) + 1);
    cfg.snapshot_dir = Some(snapshot_dir.clone());
    cfg.metrics = Some(registry.clone());

    let campaign = Campaign::new("serve", args.scale.name(), SWEEP_SEED, args.tenants);
    let (server, dial) = if args.tcp {
        let (server, addr) = match serve_tcp(cfg, "127.0.0.1:0") {
            Ok(v) => v,
            Err(e) => {
                eprintln!("serve: cannot bind TCP: {e}");
                std::process::exit(1);
            }
        };
        (server, Dial::Tcp(addr.to_string()))
    } else {
        let (server, connector) = serve_channel(cfg);
        (server, Dial::Channel(connector))
    };

    // Load phase: one small-stack thread per tenant, each streaming the
    // whole trace and bit-verifying its rows against the oracle.
    let verified = Arc::new(AtomicU64::new(0));
    let mismatched = Arc::new(AtomicU64::new(0));
    let shed = Arc::new(AtomicU64::new(0));
    let failed = Arc::new(Mutex::new(Vec::<String>::new()));
    let tenant1_rows = Arc::new(Mutex::new(Vec::<Vec<CoreInterval>>::new()));
    let started = Instant::now();
    let mut handles = Vec::with_capacity(args.tenants);
    for tenant in 1..=args.tenants as u64 {
        let dial = dial.clone();
        let trace = Arc::clone(&trace);
        let embedded = Arc::clone(&embedded);
        let set = set.clone();
        let verified = Arc::clone(&verified);
        let mismatched = Arc::clone(&mismatched);
        let shed = Arc::clone(&shed);
        let failed = Arc::clone(&failed);
        let tenant1_rows = Arc::clone(&tenant1_rows);
        let (window, chunk) = (args.window, args.chunk);
        let h = std::thread::Builder::new()
            .name(format!("tenant-{tenant}"))
            .stack_size(256 * 1024)
            .spawn(move || {
                let run = || -> Result<(), ClientError> {
                    let mut c = dial.client()?;
                    if let Some(nbytes) = chunk {
                        c = c.with_chunk(nbytes);
                    }
                    c.hello(tenant, trace.cores, &set)?;
                    let rows = c.stream(&trace.intervals, window)?;
                    if rows_bit_equal(&rows, &embedded) {
                        verified.fetch_add(1, Ordering::Relaxed);
                    } else {
                        mismatched.fetch_add(1, Ordering::Relaxed);
                    }
                    if tenant == 1 {
                        *tenant1_rows.lock().expect("rows") = rows;
                    }
                    Ok(())
                };
                match run() {
                    Ok(()) => {}
                    Err(ClientError::Shed) => {
                        shed.fetch_add(1, Ordering::Relaxed);
                    }
                    Err(e) => {
                        failed.lock().expect("failures").push(format!("tenant {tenant}: {e}"));
                    }
                }
            })
            .expect("spawn tenant");
        handles.push(h);
    }
    for h in handles {
        let _ = h.join();
    }
    let wall = started.elapsed();
    let verified = verified.load(Ordering::Relaxed);
    let mismatched = mismatched.load(Ordering::Relaxed);
    let shed = shed.load(Ordering::Relaxed);
    let failures = std::mem::take(&mut *failed.lock().expect("failures"));
    let events_total = verified.saturating_add(mismatched) * events_per_tenant;
    let events_per_s = events_total as f64 / wall.as_secs_f64().max(1e-9);

    // Evict/resume check after the load phase (quiet server).
    let resume_cut = if args.kill_resume {
        match kill_resume_check(&dial, args.tenants as u64 + 1, &trace, &set, &embedded) {
            Ok(k) => Some(k),
            Err(e) => {
                eprintln!("serve: kill-resume check failed: {e}");
                std::process::exit(1);
            }
        }
    } else {
        None
    };

    server.shutdown();

    if let Some(dir) = &args.rows_out {
        let dir = std::path::Path::new(dir);
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("serve: cannot create {}: {e}", dir.display());
            std::process::exit(1);
        }
        let served = tenant1_rows.lock().expect("rows");
        for (name, rows) in [("served.txt", &*served), ("embedded.txt", &embedded)] {
            let path = dir.join(name);
            match std::fs::File::create(&path)
                .and_then(|mut f| f.write_all(dump_rows(rows).as_bytes()))
            {
                Ok(()) => {
                    if !args.quiet {
                        eprintln!("[serve] wrote {}", path.display());
                    }
                }
                Err(e) => {
                    eprintln!("serve: cannot write {}: {e}", path.display());
                    std::process::exit(1);
                }
            }
        }
    }

    if let Some(path) = &args.metrics_out {
        if let Some(dir) = std::path::Path::new(path).parent() {
            if !dir.as_os_str().is_empty() {
                let _ = std::fs::create_dir_all(dir);
            }
        }
        match std::fs::write(path, registry.snapshot().to_json()) {
            Ok(()) => {
                if !args.quiet {
                    eprintln!("[serve] wrote {path}");
                }
            }
            Err(e) => {
                eprintln!("serve: cannot write metrics to {path}: {e}");
                std::process::exit(1);
            }
        }
    }
    if snapshot_is_temp {
        let _ = std::fs::remove_dir_all(&snapshot_dir);
    }

    let transport = if args.tcp { "tcp" } else { "channel" };
    let ids: Vec<&str> = set.iter().map(|t| t.id()).collect();
    println!("serve: sharded multi-tenant estimation service, load-driver report");
    println!(
        "  transport={transport} shards={} tenants={} window={} chunk={} techniques={}",
        args.shards,
        args.tenants,
        args.window,
        args.chunk.map_or("off".to_string(), |c| c.to_string()),
        ids.join(",")
    );
    println!("  trace: {} — {n} intervals, {events_per_tenant} events per tenant", trace.workload);
    println!("  verified={verified} mismatched={mismatched} shed={shed} errors={}", failures.len());
    println!(
        "  wall={:.2}s throughput={:.2}M events/s rows={}",
        wall.as_secs_f64(),
        events_per_s / 1e6,
        verified as usize * n
    );
    match resume_cut {
        Some(k) => println!("  kill-resume: resumed at interval {k}, tail bit-exact"),
        None => println!("  kill-resume: not requested"),
    }
    for f in failures.iter().take(8) {
        eprintln!("serve: {f}");
    }

    if args.json {
        let data = Json::obj(vec![
            ("transport", Json::Str(transport.into())),
            ("shards", Json::Num(args.shards as f64)),
            ("tenants", Json::Num(args.tenants as f64)),
            ("window", Json::Num(args.window as f64)),
            ("techniques", Json::Arr(ids.iter().map(|s| Json::Str(s.to_string())).collect())),
            ("intervals_per_tenant", Json::Num(n as f64)),
            ("events_per_tenant", Json::Num(events_per_tenant as f64)),
            ("verified", Json::Num(verified as f64)),
            ("mismatched", Json::Num(mismatched as f64)),
            ("shed", Json::Num(shed as f64)),
            ("client_errors", Json::Num(failures.len() as f64)),
            ("wall_s", Json::Num(wall.as_secs_f64())),
            ("events_per_s", Json::Num(events_per_s)),
            ("kill_resume_cut", resume_cut.map_or(Json::Null, |k| Json::Num(k as f64))),
        ]);
        match campaign.write(args.tenants, data) {
            Ok(path) => eprintln!("[serve] wrote {}", path.display()),
            Err(e) => {
                eprintln!("serve: cannot write results: {e}");
                std::process::exit(1);
            }
        }
    }

    if mismatched > 0 || !failures.is_empty() {
        std::process::exit(1);
    }
}
