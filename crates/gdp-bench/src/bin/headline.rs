//! The paper's headline numbers (§I, §VII):
//!
//! * GDP mean IPC estimation error: 3.4% (4-core) and 9.8% (8-core);
//! * GDP private-performance RMS error 7.4× / huge-factor better than ASM
//!   on the 4-/8-core CMPs;
//! * GDP-O reduces stall-cycle RMS error vs GDP by 13.5% / 10.8%;
//! * MCP improves average STP by 11.9% / 20.8% over ASM partitioning;
//! * ASM's invasive accounting slowed individual processes by up to 57%.
//!
//! Each headline line needs specific techniques: under a `--techniques`
//! subset, lines whose techniques were not evaluated are skipped.

use gdp_bench::{
    accuracy_sweep_traced, banner, class_workloads, sweep_job_count, sweep_job_labels, BenchArgs,
    SweepCell,
};
use gdp_experiments::{run_policy_study, ExperimentConfig, PolicyKind, Technique};
use gdp_metrics::mean;
use gdp_runner::{Json, Progress};
use gdp_workloads::{LlcClass, Workload};

fn main() {
    let args = BenchArgs::parse("headline");
    let techniques = args.techniques_or(&Technique::ALL);
    let cells: Vec<SweepCell> = [4usize, 8]
        .iter()
        .flat_map(|&cores| {
            [LlcClass::H, LlcClass::M, LlcClass::L]
                .iter()
                .map(move |&class| SweepCell { cores, class })
        })
        .collect();
    let prep: Vec<(ExperimentConfig, Vec<Workload>)> = cells
        .iter()
        .map(|c| (args.scale.xcfg(c.cores), class_workloads(c.cores, c.class, args.scale)))
        .collect();
    // The STP phase's labels, shared between the `--list` plan and
    // execution progress (the accuracy phase's come from
    // `sweep_job_labels`, which `accuracy_sweep_traced` also uses).
    let stp_plan: Vec<(&Workload, &ExperimentConfig, String)> = cells
        .iter()
        .zip(&prep)
        .flat_map(|(cell, (xcfg, ws))| {
            ws.iter().map(move |w| (w, xcfg, format!("{}/{} STP", cell.label(), w.name)))
        })
        .collect();
    if args.list {
        let mut labels = sweep_job_labels(&cells, args.scale, &techniques);
        labels.extend(stp_plan.iter().map(|(_, _, l)| l.clone()));
        args.print_plan(&labels);
        return;
    }
    banner("Headline numbers (paper §I / §VII)", args.scale);

    let stp_jobs: usize = prep.iter().map(|(_, ws)| ws.len()).sum();
    let job_count = sweep_job_count(&cells, args.scale, &techniques) + stp_jobs;
    let mut campaign = args.campaign();
    let progress = Progress::new(args.bin, job_count);
    let pool = args.pool();
    let traces = args.traces();

    // Phase 1: the accuracy campaign over both CMP sizes.
    let sweep =
        accuracy_sweep_traced(&cells, args.scale, &techniques, &pool, &progress, traces.as_ref());

    // Phase 2: the MCP-vs-ASM STP study, one job per workload.
    let policy_jobs: Vec<_> = stp_plan
        .iter()
        .map(|(w, xcfg, label)| {
            let progress = &progress;
            move || {
                let out = run_policy_study(
                    w,
                    xcfg,
                    &[PolicyKind::AsmPart, PolicyKind::Mcp(Technique::GDP)],
                );
                progress.finish_item(label);
                out
            }
        })
        .collect();
    let mut policy_outcomes = pool.run(policy_jobs).into_iter();

    // Indices of the headline techniques in the evaluated set, when
    // selected.
    let idx = |t: Technique| techniques.iter().position(|x| *x == t);
    let (gi, goi, ai) = (idx(Technique::GDP), idx(Technique::GDP_O), idx(Technique::ASM));

    let mut data_sizes = Vec::new();
    for cores in [4usize, 8] {
        let mut rel_ipc_gdp = Vec::new();
        let mut ipc_gdp = Vec::new();
        let mut ipc_asm = Vec::new();
        let mut stall_gdp = Vec::new();
        let mut stall_gdpo = Vec::new();
        let mut worst_slowdown = 1.0f64;
        for (cell, results) in cells.iter().zip(&sweep) {
            if cell.cores != cores {
                continue;
            }
            for r in results {
                for b in &r.benches {
                    if let Some(g) = gi {
                        if !b.ipc_err[g].is_empty() {
                            rel_ipc_gdp.push(b.ipc_err[g].rms_rel().abs() * 100.0);
                            ipc_gdp.push(b.ipc_err[g].rms_abs());
                            stall_gdp.push(b.stall_err[g].rms_abs());
                            if let Some(go) = goi {
                                stall_gdpo.push(b.stall_err[go].rms_abs());
                            }
                        }
                    }
                    if let Some(a) = ai {
                        if !b.ipc_err[a].is_empty() {
                            ipc_asm.push(b.ipc_err[a].rms_abs());
                        }
                    }
                }
                for s in &r.invasive_slowdown {
                    worst_slowdown = worst_slowdown.max(*s);
                }
            }
        }
        println!("\n--- {cores}-core CMP ---");
        let mut fields = vec![("cores", Json::from(cores))];
        if gi.is_some() {
            println!(
                "GDP mean relative IPC estimation error: {:.1}%   (paper: {}%)",
                mean(&rel_ipc_gdp),
                if cores == 4 { "3.4" } else { "9.8" }
            );
            fields.push(("gdp_mean_rel_ipc_err_pct", Json::from(mean(&rel_ipc_gdp))));
        }
        if gi.is_some() && ai.is_some() {
            let ratio = mean(&ipc_asm) / mean(&ipc_gdp).max(1e-12);
            println!(
                "ASM/GDP IPC RMS error ratio: {:.1}x   (paper: {} better for GDP)",
                ratio,
                if cores == 4 { "7.4x" } else { "7.7e12x" }
            );
            fields.push(("asm_over_gdp_ipc_rms_ratio", Json::from(ratio)));
        }
        if gi.is_some() && goi.is_some() {
            let gdpo_gain = 100.0 * (1.0 - mean(&stall_gdpo) / mean(&stall_gdp).max(1e-12));
            println!(
                "GDP-O stall RMS improvement over GDP: {:.1}%   (paper: {}%)",
                gdpo_gain,
                if cores == 4 { "13.5" } else { "10.8" }
            );
            fields.push(("gdpo_stall_rms_gain_pct", Json::from(gdpo_gain)));
        }
        if ai.is_some() {
            println!(
                "Worst per-process slowdown from ASM's invasive accounting: {:.0}%   (paper: up to 57%)",
                (worst_slowdown - 1.0) * 100.0
            );
            fields.push(("worst_asm_slowdown_pct", Json::from((worst_slowdown - 1.0) * 100.0)));
        }

        // MCP vs ASM partitioning STP (outcomes arrive in cell order;
        // this CMP size owns the next three cells' workloads).
        let mut stp_mcp = Vec::new();
        let mut stp_asm = Vec::new();
        for (cell, (_, workloads)) in cells.iter().zip(&prep) {
            if cell.cores != cores {
                continue;
            }
            for _ in workloads {
                let out = policy_outcomes.next().expect("one STP outcome per workload");
                stp_asm.push(out[0].stp);
                stp_mcp.push(out[1].stp);
            }
        }
        let mcp_gain = 100.0 * (mean(&stp_mcp) / mean(&stp_asm).max(1e-12) - 1.0);
        println!(
            "MCP avg STP improvement over ASM partitioning: {:+.1}%   (paper: {}%)",
            mcp_gain,
            if cores == 4 { "+11.9" } else { "+20.8" }
        );
        fields.push(("mcp_vs_asm_stp_gain_pct", Json::from(mcp_gain)));

        data_sizes.push(Json::obj(fields));
    }

    let data = Json::obj(vec![("cmp_sizes", Json::Arr(data_sizes))]);
    args.finish_campaign(&mut campaign, &progress, traces.as_ref());
    args.write_json(&campaign, job_count, data);
}
