//! The paper's headline numbers (§I, §VII):
//!
//! * GDP mean IPC estimation error: 3.4% (4-core) and 9.8% (8-core);
//! * GDP private-performance RMS error 7.4× / huge-factor better than ASM
//!   on the 4-/8-core CMPs;
//! * GDP-O reduces stall-cycle RMS error vs GDP by 13.5% / 10.8%;
//! * MCP improves average STP by 11.9% / 20.8% over ASM partitioning;
//! * ASM's invasive accounting slowed individual processes by up to 57%.

use gdp_bench::{banner, class_workloads, Scale};
use gdp_experiments::{evaluate_workload, run_policy_study, PolicyKind, Technique};
use gdp_metrics::mean;
use gdp_workloads::LlcClass;

fn tech_idx(t: Technique) -> usize {
    Technique::ALL.iter().position(|x| *x == t).unwrap()
}

fn main() {
    let scale = Scale::from_args();
    banner("Headline numbers (paper §I / §VII)", scale);

    for cores in [4usize, 8] {
        let xcfg = scale.xcfg(cores);
        let mut rel_ipc_gdp = Vec::new();
        let mut ipc_gdp = Vec::new();
        let mut ipc_asm = Vec::new();
        let mut stall_gdp = Vec::new();
        let mut stall_gdpo = Vec::new();
        let mut worst_slowdown = 1.0f64;
        for class in [LlcClass::H, LlcClass::M, LlcClass::L] {
            for w in class_workloads(cores, class, scale) {
                let r = evaluate_workload(&w, &xcfg);
                for b in &r.benches {
                    let g = tech_idx(Technique::Gdp);
                    let go = tech_idx(Technique::GdpO);
                    let a = tech_idx(Technique::Asm);
                    if !b.ipc_err[g].is_empty() {
                        rel_ipc_gdp.push(b.ipc_err[g].rms_rel().abs() * 100.0);
                        ipc_gdp.push(b.ipc_err[g].rms_abs());
                        stall_gdp.push(b.stall_err[g].rms_abs());
                        stall_gdpo.push(b.stall_err[go].rms_abs());
                    }
                    if !b.ipc_err[a].is_empty() {
                        ipc_asm.push(b.ipc_err[a].rms_abs());
                    }
                }
                for s in &r.invasive_slowdown {
                    worst_slowdown = worst_slowdown.max(*s);
                }
            }
            eprintln!("[headline] finished {cores}c-{class}");
        }
        println!("\n--- {cores}-core CMP ---");
        println!(
            "GDP mean relative IPC estimation error: {:.1}%   (paper: {}%)",
            mean(&rel_ipc_gdp),
            if cores == 4 { "3.4" } else { "9.8" }
        );
        let ratio = mean(&ipc_asm) / mean(&ipc_gdp).max(1e-12);
        println!(
            "ASM/GDP IPC RMS error ratio: {:.1}x   (paper: {} better for GDP)",
            ratio,
            if cores == 4 { "7.4x" } else { "7.7e12x" }
        );
        let gdpo_gain = 100.0 * (1.0 - mean(&stall_gdpo) / mean(&stall_gdp).max(1e-12));
        println!(
            "GDP-O stall RMS improvement over GDP: {:.1}%   (paper: {}%)",
            gdpo_gain,
            if cores == 4 { "13.5" } else { "10.8" }
        );
        println!(
            "Worst per-process slowdown from ASM's invasive accounting: {:.0}%   (paper: up to 57%)",
            (worst_slowdown - 1.0) * 100.0
        );

        // MCP vs ASM partitioning STP.
        let mut stp_mcp = Vec::new();
        let mut stp_asm = Vec::new();
        for class in [LlcClass::H, LlcClass::M, LlcClass::L] {
            for w in class_workloads(cores, class, scale) {
                let out = run_policy_study(&w, &xcfg, &[PolicyKind::AsmPart, PolicyKind::Mcp]);
                stp_asm.push(out[0].stp);
                stp_mcp.push(out[1].stp);
            }
            eprintln!("[headline] STP finished {cores}c-{class}");
        }
        println!(
            "MCP avg STP improvement over ASM partitioning: {:+.1}%   (paper: {}%)",
            100.0 * (mean(&stp_mcp) / mean(&stp_asm).max(1e-12) - 1.0),
            if cores == 4 { "+11.9" } else { "+20.8" }
        );
    }
}
