//! Figure 5: relative RMS error distributions of GDP/GDP-O's estimate
//! components — (a) CPL, (b) overlap, (c) DIEF private latency — reported
//! as five-number summaries (the paper uses violin plots).

use gdp_bench::{accuracy_cell, banner, Scale};
use gdp_metrics::Summary;
use gdp_workloads::LlcClass;

fn print_summary(label: &str, s: &Summary) {
    println!(
        "{label:8} min {:8.1}%   p25 {:8.1}%   median {:8.1}%   p75 {:8.1}%   max {:8.1}%   (n={})",
        s.min, s.p25, s.median, s.p75, s.max, s.n
    );
}

fn main() {
    let scale = Scale::from_args();
    banner("Figure 5: GDP/GDP-O component error distributions", scale);

    let mut cpl: Vec<(String, Summary)> = Vec::new();
    let mut overlap: Vec<(String, Summary)> = Vec::new();
    let mut lambda: Vec<(String, Summary)> = Vec::new();
    for cores in [2usize, 4, 8] {
        for class in [LlcClass::H, LlcClass::M, LlcClass::L] {
            let cell = accuracy_cell(cores, class, scale);
            let label = format!("{cores}c-{class}");
            cpl.push((label.clone(), Summary::of(&cell.cpl_rel)));
            overlap.push((label.clone(), Summary::of(&cell.overlap_rel)));
            lambda.push((label.clone(), Summary::of(&cell.lambda_rel)));
            eprintln!("[fig5] finished {label}");
        }
    }

    println!("\n(a) CPL estimate, relative RMS error distribution");
    for (l, s) in &cpl {
        print_summary(l, s);
    }
    println!("\n(b) Overlap estimate, relative RMS error distribution");
    for (l, s) in &overlap {
        print_summary(l, s);
    }
    println!("\n(c) DIEF private-latency estimate, relative RMS error distribution");
    for (l, s) in &lambda {
        print_summary(l, s);
    }
    println!(
        "\nPaper reference (Fig. 5): CPL median error < 10% for most categories with \
         outlier clusters; overlap errors can be large for L-workloads without harming \
         IPC accuracy; latency medians ≤ 31%."
    );
}
