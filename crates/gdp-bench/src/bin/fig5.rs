//! Figure 5: relative RMS error distributions of GDP/GDP-O's estimate
//! components — (a) CPL, (b) overlap, (c) DIEF private latency — reported
//! as five-number summaries (the paper uses violin plots).

use gdp_bench::{
    accuracy_sweep_traced, aggregate, all_cells, banner, cell_accuracy_json, sweep_job_count,
    sweep_job_labels, BenchArgs,
};
use gdp_experiments::Technique;
use gdp_metrics::Summary;
use gdp_runner::{Json, Progress};

fn print_summary(label: &str, s: &Summary) {
    println!(
        "{label:8} min {:8.1}%   p25 {:8.1}%   median {:8.1}%   p75 {:8.1}%   max {:8.1}%   (n={})",
        s.min, s.p25, s.median, s.p75, s.max, s.n
    );
}

fn main() {
    let args = BenchArgs::parse("fig5");
    let techniques = args.techniques_or(&Technique::ALL);
    // The whole figure is GDP/GDP-O component errors: a selection with
    // neither still runs (IPC/stall errors are computed) but every
    // CPL/overlap section would be empty — say so instead of printing
    // NaN tables that look like a broken run.
    if !techniques.contains(&Technique::GDP) && !techniques.contains(&Technique::GDP_O) {
        eprintln!(
            "[fig5] warning: selection {:?} contains neither gdp nor gdp-o; \
             the CPL/overlap component sections will be empty",
            techniques.iter().map(|t| t.id()).collect::<Vec<_>>()
        );
    }
    let cells = all_cells();
    if args.list {
        args.print_plan(&sweep_job_labels(&cells, args.scale, &techniques));
        return;
    }
    banner("Figure 5: GDP/GDP-O component error distributions", args.scale);

    let job_count = sweep_job_count(&cells, args.scale, &techniques);
    let mut campaign = args.campaign();
    let progress = Progress::new(args.bin, job_count);
    let traces = args.traces();
    let sweep = accuracy_sweep_traced(
        &cells,
        args.scale,
        &techniques,
        &args.pool(),
        &progress,
        traces.as_ref(),
    );

    let mut cpl: Vec<(String, Summary)> = Vec::new();
    let mut overlap: Vec<(String, Summary)> = Vec::new();
    let mut lambda: Vec<(String, Summary)> = Vec::new();
    let mut data_cells = Vec::new();
    for (cell, results) in cells.iter().zip(&sweep) {
        let agg = aggregate(results);
        let label = cell.label();
        cpl.push((label.clone(), Summary::of(&agg.cpl_rel)));
        overlap.push((label.clone(), Summary::of(&agg.overlap_rel)));
        lambda.push((label.clone(), Summary::of(&agg.lambda_rel)));
        data_cells.push(cell_accuracy_json(&label, &agg));
    }

    println!("\n(a) CPL estimate, relative RMS error distribution");
    for (l, s) in &cpl {
        print_summary(l, s);
    }
    println!("\n(b) Overlap estimate, relative RMS error distribution");
    for (l, s) in &overlap {
        print_summary(l, s);
    }
    println!("\n(c) DIEF private-latency estimate, relative RMS error distribution");
    for (l, s) in &lambda {
        print_summary(l, s);
    }
    println!(
        "\nPaper reference (Fig. 5): CPL median error < 10% for most categories with \
         outlier clusters; overlap errors can be large for L-workloads without harming \
         IPC accuracy; latency medians ≤ 31%."
    );

    let data = Json::obj(vec![("cells", Json::Arr(data_cells))]);
    args.finish_campaign(&mut campaign, &progress, traces.as_ref());
    args.write_json(&campaign, job_count, data);
}
