//! Figure 4: absolute RMS error distribution of the SMS-load stall-cycle
//! predictions — all workload categories combined, errors sorted
//! ascending per technique (one series per CMP size).

use gdp_bench::{
    accuracy_sweep_traced, all_cells, banner, sweep_job_count, sweep_job_labels, BenchArgs,
};
use gdp_experiments::Technique;
use gdp_runner::{Json, Progress};

fn main() {
    let args = BenchArgs::parse("fig4");
    let techniques = args.techniques_or(&Technique::ALL);
    // One flattened campaign over all nine cells; regrouped by CMP size
    // below (classes are combined per the figure).
    let cells = all_cells();
    if args.list {
        args.print_plan(&sweep_job_labels(&cells, args.scale, &techniques));
        return;
    }
    banner("Figure 4: sorted SMS-stall RMS error distributions", args.scale);

    let job_count = sweep_job_count(&cells, args.scale, &techniques);
    let mut campaign = args.campaign();
    let progress = Progress::new(args.bin, job_count);
    let traces = args.traces();
    let sweep = accuracy_sweep_traced(
        &cells,
        args.scale,
        &techniques,
        &args.pool(),
        &progress,
        traces.as_ref(),
    );

    let mut data_sizes = Vec::new();
    for cores in [2usize, 4, 8] {
        let mut per_tech: Vec<Vec<f64>> = vec![Vec::new(); techniques.len()];
        for (cell, results) in cells.iter().zip(&sweep) {
            if cell.cores != cores {
                continue;
            }
            for r in results {
                for b in &r.benches {
                    for t in 0..techniques.len() {
                        if !b.stall_err[t].is_empty() {
                            per_tech[t].push(b.stall_err[t].rms_abs());
                        }
                    }
                }
            }
        }
        for v in &mut per_tech {
            v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        }

        println!("\n--- {cores}-core CMP: sorted per-benchmark stall RMS errors (cycles) ---");
        let n = per_tech[0].len();
        print!("{:>6}", "rank");
        for t in &techniques {
            print!(" {:>12}", t.name());
        }
        println!();
        // Print deciles rather than every point (the full series is long).
        let mut decile_rows: Vec<Vec<f64>> = vec![Vec::new(); techniques.len()];
        for decile in 0..=10 {
            let idx = if n == 0 { 0 } else { ((n - 1) * decile) / 10 };
            print!("{:>5}%", decile * 10);
            for (t, v) in per_tech.iter().enumerate() {
                if v.is_empty() {
                    print!(" {:>12}", "-");
                } else {
                    print!(" {:>12.0}", v[idx]);
                    decile_rows[t].push(v[idx]);
                }
            }
            println!();
        }
        data_sizes.push(Json::obj(vec![
            ("cores", Json::from(cores)),
            ("benchmarks", Json::from(n)),
            (
                "stall_rms_deciles",
                Json::Obj(
                    techniques
                        .iter()
                        .zip(&decile_rows)
                        .map(|(t, row)| {
                            (
                                t.name().to_string(),
                                Json::Arr(row.iter().map(|&x| Json::from(x)).collect()),
                            )
                        })
                        .collect(),
                ),
            ),
        ]));
    }
    println!(
        "\nPaper reference (Fig. 4): GDP and GDP-O curves sit below ITCA/PTCA/ASM \
         across the distribution for every CMP size."
    );

    let data = Json::obj(vec![("cmp_sizes", Json::Arr(data_sizes))]);
    args.finish_campaign(&mut campaign, &progress, traces.as_ref());
    args.write_json(&campaign, job_count, data);
}
