//! Figure 4: absolute RMS error distribution of the SMS-load stall-cycle
//! predictions — all workload categories combined, errors sorted
//! ascending per technique (one series per CMP size).

use gdp_bench::{banner, class_workloads, Scale};
use gdp_experiments::{evaluate_workload, Technique};
use gdp_workloads::LlcClass;

fn main() {
    let scale = Scale::from_args();
    banner("Figure 4: sorted SMS-stall RMS error distributions", scale);

    for cores in [2usize, 4, 8] {
        let xcfg = scale.xcfg(cores);
        let mut per_tech: Vec<Vec<f64>> = vec![Vec::new(); Technique::ALL.len()];
        for class in [LlcClass::H, LlcClass::M, LlcClass::L] {
            for w in class_workloads(cores, class, scale) {
                let r = evaluate_workload(&w, &xcfg);
                for b in &r.benches {
                    for t in 0..Technique::ALL.len() {
                        if !b.stall_err[t].is_empty() {
                            per_tech[t].push(b.stall_err[t].rms_abs());
                        }
                    }
                }
            }
        }
        for v in &mut per_tech {
            v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        }

        println!("\n--- {cores}-core CMP: sorted per-benchmark stall RMS errors (cycles) ---");
        let n = per_tech[0].len();
        print!("{:>6}", "rank");
        for t in Technique::ALL {
            print!(" {:>12}", t.name());
        }
        println!();
        // Print deciles rather than every point (the full series is long).
        for decile in 0..=10 {
            let idx = if n == 0 { 0 } else { ((n - 1) * decile) / 10 };
            print!("{:>5}%", decile * 10);
            for v in &per_tech {
                if v.is_empty() {
                    print!(" {:>12}", "-");
                } else {
                    print!(" {:>12.0}", v[idx]);
                }
            }
            println!();
        }
        eprintln!("[fig4] finished {cores}-core");
    }
    println!(
        "\nPaper reference (Fig. 4): GDP and GDP-O curves sit below ITCA/PTCA/ASM \
         across the distribution for every CMP size."
    );
}
