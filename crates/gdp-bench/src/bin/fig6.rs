//! Figure 6: system throughput with LLC partitioning — (a) average STP of
//! LRU / UCP / ASM / MCP / MCP-O per (CMP size, workload class); (b) STP
//! relative to LRU for every 8-core H-workload.

use gdp_bench::{banner, class_workloads, Scale};
use gdp_experiments::{run_policy_study, PolicyKind};
use gdp_metrics::mean;
use gdp_workloads::LlcClass;

fn main() {
    let scale = Scale::from_args();
    banner("Figure 6: system throughput with LLC partitioning", scale);

    // ---- (a) average STP per (cores, class) ----
    println!("\n(a) average STP");
    print!("{:8}", "cell");
    for p in PolicyKind::ALL {
        print!(" {:>8}", p.name());
    }
    println!();
    let mut eight_core_h: Vec<(String, Vec<f64>)> = Vec::new();
    for cores in [2usize, 4, 8] {
        let xcfg = scale.xcfg(cores);
        for class in [LlcClass::H, LlcClass::M, LlcClass::L] {
            let workloads = class_workloads(cores, class, scale);
            let mut per_policy: Vec<Vec<f64>> = vec![Vec::new(); PolicyKind::ALL.len()];
            for w in &workloads {
                let out = run_policy_study(w, &xcfg, &PolicyKind::ALL);
                for (i, o) in out.iter().enumerate() {
                    per_policy[i].push(o.stp);
                }
                if cores == 8 && class == LlcClass::H {
                    eight_core_h.push((w.name.clone(), out.iter().map(|o| o.stp).collect()));
                }
            }
            print!("{:8}", format!("{cores}c-{class}"));
            for v in &per_policy {
                print!(" {:>8.3}", mean(v));
            }
            println!();
            eprintln!("[fig6] finished {cores}c-{class}");
        }
    }

    // ---- (b) 8-core H workloads relative to LRU ----
    println!("\n(b) 8-core H workloads: STP relative to LRU");
    print!("{:12}", "workload");
    for p in PolicyKind::ALL {
        print!(" {:>8}", p.name());
    }
    println!();
    for (name, stps) in &eight_core_h {
        let lru = stps[0].max(1e-9);
        print!("{name:12}");
        for s in stps {
            print!(" {:>8.3}", s / lru);
        }
        println!();
    }
    println!(
        "\nPaper reference (Fig. 6): MCP and MCP-O are the top performers on the 4- \
         and 8-core CMPs (8c-H: +11%/+34%/+52% vs LRU/UCP/ASM); all policies tie on \
         the 2-core CMP where contention is limited."
    );
}
