//! Figure 6: system throughput with LLC partitioning — (a) average STP of
//! LRU / UCP / ASM / MCP / MCP-O per (CMP size, workload class); (b) STP
//! relative to LRU for every 8-core H-workload.

use gdp_bench::{all_cells, banner, class_workloads, BenchArgs};
use gdp_experiments::{run_policy_study, ExperimentConfig, PolicyKind, Technique};
use gdp_metrics::mean;
use gdp_runner::{Json, Progress};
use gdp_workloads::{LlcClass, Workload};

fn main() {
    let args = BenchArgs::parse("fig6");
    // The technique selection picks which registered transparent
    // techniques feed MCP's partitioning lookahead: the default
    // (gdp,gdp-o) yields the paper's MCP and MCP-O columns next to the
    // fixed LRU/UCP/ASM managers.
    let feeders = PolicyKind::mcp_feeders(&args.techniques_or(&[Technique::GDP, Technique::GDP_O]));
    let mut policies = vec![PolicyKind::Lru, PolicyKind::Ucp, PolicyKind::AsmPart];
    policies.extend(feeders);
    // Flatten to one job per (cell, workload): each runs the full policy
    // study (the LLC managers plus the private reference runs).
    // Policy studies measure throughput under invasive repartitioning,
    // not the estimator-facing stream, so the trace cache does not apply
    // here — say so instead of silently ignoring the flags.
    if args.record || args.replay {
        eprintln!(
            "[fig6] note: invasive policy studies bypass the trace cache; \
             --record/--replay are ignored"
        );
    }
    let cells = all_cells();
    let prep: Vec<(ExperimentConfig, Vec<Workload>)> = cells
        .iter()
        .map(|c| (args.scale.xcfg(c.cores), class_workloads(c.cores, c.class, args.scale)))
        .collect();
    // One label per job, shared between the `--list` plan and execution
    // progress so the two can never drift.
    let flat: Vec<(&Workload, &ExperimentConfig, String)> = cells
        .iter()
        .zip(&prep)
        .flat_map(|(cell, (xcfg, ws))| {
            ws.iter().map(move |w| (w, xcfg, format!("{}/{}", cell.label(), w.name)))
        })
        .collect();
    if args.list {
        let labels: Vec<String> = flat.iter().map(|(_, _, l)| l.clone()).collect();
        args.print_plan(&labels);
        return;
    }
    banner("Figure 6: system throughput with LLC partitioning", args.scale);

    let job_count = flat.len();
    let mut campaign = args.campaign();
    let progress = Progress::new(args.bin, job_count);

    let jobs: Vec<_> = flat
        .iter()
        .map(|(w, xcfg, label)| {
            let progress = &progress;
            let policies = &policies;
            move || {
                let out = run_policy_study(w, xcfg, policies);
                progress.finish_item(label);
                out
            }
        })
        .collect();
    let mut outcomes = args.pool().run(jobs).into_iter();

    // ---- (a) average STP per (cores, class) ----
    println!("\n(a) average STP");
    print!("{:8}", "cell");
    for p in &policies {
        print!(" {:>8}", p.name());
    }
    println!();
    let mut eight_core_h: Vec<(String, Vec<f64>)> = Vec::new();
    let mut data_cells = Vec::new();
    for (cell, (_, workloads)) in cells.iter().zip(&prep) {
        let mut per_policy: Vec<Vec<f64>> = vec![Vec::new(); policies.len()];
        for w in workloads {
            let out = outcomes.next().expect("one outcome per workload");
            for (i, o) in out.iter().enumerate() {
                per_policy[i].push(o.stp);
            }
            if cell.cores == 8 && cell.class == LlcClass::H {
                eight_core_h.push((w.name.clone(), out.iter().map(|o| o.stp).collect()));
            }
        }
        print!("{:8}", cell.label());
        for v in &per_policy {
            print!(" {:>8.3}", mean(v));
        }
        println!();
        data_cells.push(Json::obj(vec![
            ("cell", Json::from(cell.label())),
            (
                "avg_stp",
                Json::Obj(
                    policies
                        .iter()
                        .zip(&per_policy)
                        .map(|(p, v)| (p.name(), Json::from(mean(v))))
                        .collect(),
                ),
            ),
        ]));
    }

    // ---- (b) 8-core H workloads relative to LRU ----
    println!("\n(b) 8-core H workloads: STP relative to LRU");
    print!("{:12}", "workload");
    for p in &policies {
        print!(" {:>8}", p.name());
    }
    println!();
    let mut data_8ch = Vec::new();
    for (name, stps) in &eight_core_h {
        let lru = stps[0].max(1e-9);
        print!("{name:12}");
        for s in stps {
            print!(" {:>8.3}", s / lru);
        }
        println!();
        data_8ch.push(Json::obj(vec![
            ("workload", Json::from(name.as_str())),
            (
                "stp_vs_lru",
                Json::Obj(
                    policies
                        .iter()
                        .zip(stps)
                        .map(|(p, s)| (p.name(), Json::from(s / lru)))
                        .collect(),
                ),
            ),
        ]));
    }
    println!(
        "\nPaper reference (Fig. 6): MCP and MCP-O are the top performers on the 4- \
         and 8-core CMPs (8c-H: +11%/+34%/+52% vs LRU/UCP/ASM); all policies tie on \
         the 2-core CMP where contention is limited."
    );

    let data = Json::obj(vec![
        ("cells", Json::Arr(data_cells)),
        ("eight_core_h_vs_lru", Json::Arr(data_8ch)),
    ]);
    args.finish_campaign(&mut campaign, &progress, None);
    args.write_json(&campaign, job_count, data);
}
