//! Regenerates Table I: CMP model parameters, for both the paper preset
//! and the scaled preset actually used in the experiments.

use gdp_bench::BenchArgs;
use gdp_runner::Json;
use gdp_sim::SimConfig;

fn print_config(label: &str, cfg: &SimConfig) {
    println!("--- {label} ({} cores) ---", cfg.cores);
    println!("Clock frequency        4 GHz (all latencies in CPU cycles)");
    let c = &cfg.core;
    println!(
        "Processor cores        {} entry ROB, {} entry LSQ, {} entry IQ, {} instr/cycle,",
        c.rob_entries, c.lsq_entries, c.iq_entries, c.width
    );
    println!(
        "                       {} int ALU, {} int mul/div, {} FP ALU, {} FP mul/div, {} mem ports",
        c.int_alu, c.int_mul_div, c.fp_alu, c.fp_mul_div, c.mem_ports
    );
    println!(
        "L1 data cache          {}-way, {} KB, {} cycles, {} MSHRs",
        cfg.l1d.ways,
        cfg.l1d.size_bytes >> 10,
        cfg.l1d.latency,
        cfg.l1d.mshrs
    );
    println!(
        "L2 private cache       {}-way, {} KB, {} cycles, {} MSHRs",
        cfg.l2.ways,
        cfg.l2.size_bytes >> 10,
        cfg.l2.latency,
        cfg.l2.mshrs
    );
    println!(
        "L3 shared cache        {}-way, {} KB, {} cycles, {} MSHRs/bank, {} banks",
        cfg.llc.ways,
        cfg.llc.size_bytes >> 10,
        cfg.llc.latency,
        cfg.llc.mshrs,
        cfg.llc_banks
    );
    println!(
        "Ring interconnect      {} cycles/hop, {} entry queues, {} request ring(s), {} response ring",
        cfg.ring.hop_latency, cfg.ring.queue_entries, cfg.ring.request_rings, cfg.ring.response_rings
    );
    let d = &cfg.dram;
    println!(
        "Main memory            {:?}, {}-{}-{}-{} timing, {} entry read queue, {} entry write queue,",
        d.kind, d.t_cl, d.t_rcd, d.t_rp, d.t_ras, d.read_queue, d.write_queue
    );
    println!(
        "                       {} B pages, {} banks, FR-FCFS, open page, {} channel(s)",
        d.row_bytes, d.banks, d.channels
    );
    println!();
}

fn config_json(preset: &str, cfg: &SimConfig) -> Json {
    Json::obj(vec![
        ("preset", Json::from(preset)),
        ("cores", Json::from(cfg.cores)),
        (
            "core",
            Json::obj(vec![
                ("rob_entries", Json::from(cfg.core.rob_entries)),
                ("lsq_entries", Json::from(cfg.core.lsq_entries)),
                ("iq_entries", Json::from(cfg.core.iq_entries)),
                ("width", Json::from(cfg.core.width)),
            ]),
        ),
        (
            "l1d",
            Json::obj(vec![
                ("ways", Json::from(cfg.l1d.ways)),
                ("size_bytes", Json::from(cfg.l1d.size_bytes)),
                ("latency", Json::from(cfg.l1d.latency)),
                ("mshrs", Json::from(cfg.l1d.mshrs)),
            ]),
        ),
        (
            "l2",
            Json::obj(vec![
                ("ways", Json::from(cfg.l2.ways)),
                ("size_bytes", Json::from(cfg.l2.size_bytes)),
                ("latency", Json::from(cfg.l2.latency)),
                ("mshrs", Json::from(cfg.l2.mshrs)),
            ]),
        ),
        (
            "llc",
            Json::obj(vec![
                ("ways", Json::from(cfg.llc.ways)),
                ("size_bytes", Json::from(cfg.llc.size_bytes)),
                ("latency", Json::from(cfg.llc.latency)),
                ("mshrs_per_bank", Json::from(cfg.llc.mshrs)),
                ("banks", Json::from(cfg.llc_banks)),
            ]),
        ),
        (
            "dram",
            Json::obj(vec![
                ("kind", Json::from(format!("{:?}", cfg.dram.kind))),
                ("channels", Json::from(cfg.dram.channels)),
                ("banks", Json::from(cfg.dram.banks)),
                ("read_queue", Json::from(cfg.dram.read_queue)),
                ("write_queue", Json::from(cfg.dram.write_queue)),
                ("row_bytes", Json::from(cfg.dram.row_bytes)),
            ]),
        ),
    ])
}

fn main() {
    let args = BenchArgs::parse("table1");
    // table1 is pure printing: the job plan is empty, and the trace
    // cache has nothing to record or replay.
    if args.print_plan(&[]) {
        return;
    }
    println!("Table I: CMP model parameters");
    println!("(multiple-value encoding in the paper: 2-core/4-core/8-core)\n");
    let campaign = args.campaign();
    let mut configs = Vec::new();
    for cores in [2usize, 4, 8] {
        let cfg = SimConfig::paper(cores);
        print_config(&format!("paper preset, {cores}-core"), &cfg);
        configs.push(config_json("paper", &cfg));
    }
    for cores in [2usize, 4, 8] {
        let cfg = SimConfig::scaled(cores);
        print_config(&format!("scaled preset, {cores}-core"), &cfg);
        configs.push(config_json("scaled", &cfg));
    }
    let data = Json::obj(vec![("configs", Json::Arr(configs))]);
    args.write_json(&campaign, 0, data);
}
