//! Figure 3: average private-mode prediction accuracy.
//!
//! (a) average absolute RMS error of IPC estimates and (b) of SMS-load
//! stall-cycle estimates, for ITCA / PTCA / ASM / GDP / GDP-O across the
//! 2-, 4- and 8-core CMPs and the H/M/L workload categories.

use gdp_bench::{
    accuracy_sweep_traced, aggregate, all_cells, banner, cell_accuracy_json, sweep_job_count,
    sweep_job_labels, BenchArgs,
};
use gdp_experiments::Technique;
use gdp_runner::{Json, Progress};

fn main() {
    let args = BenchArgs::parse("fig3");
    let techniques = args.techniques_or(&Technique::ALL);
    let cells = all_cells();
    if args.list {
        args.print_plan(&sweep_job_labels(&cells, args.scale, &techniques));
        return;
    }
    banner("Figure 3: average private-mode prediction accuracy", args.scale);

    let job_count = sweep_job_count(&cells, args.scale, &techniques);
    let mut campaign = args.campaign();
    let progress = Progress::new(args.bin, job_count);
    let traces = args.traces();
    let sweep = accuracy_sweep_traced(
        &cells,
        args.scale,
        &techniques,
        &args.pool(),
        &progress,
        traces.as_ref(),
    );

    let header = {
        let mut h = format!("{:8}", "cell");
        for t in &techniques {
            h += &format!(" {:>12}", t.name());
        }
        h
    };

    let mut ipc_rows = Vec::new();
    let mut stall_rows = Vec::new();
    let mut data_cells = Vec::new();
    for (cell, results) in cells.iter().zip(&sweep) {
        let agg = aggregate(results);
        let label = cell.label();
        let mut ipc_row = format!("{label:8}");
        let mut stall_row = format!("{label:8}");
        for t in 0..techniques.len() {
            ipc_row += &format!(" {:>12.4}", agg.ipc_rms[t]);
            stall_row += &format!(" {:>12.0}", agg.stall_rms[t]);
        }
        ipc_rows.push(ipc_row);
        stall_rows.push(stall_row);
        data_cells.push(cell_accuracy_json(&label, &agg));
    }

    println!("\n(a) IPC estimate, average absolute RMS error");
    println!("{header}");
    for r in &ipc_rows {
        println!("{r}");
    }
    println!("\n(b) SMS-load stall cycles, average absolute RMS error (cycles)");
    println!("{header}");
    for r in &stall_rows {
        println!("{r}");
    }
    println!(
        "\nPaper reference (Fig. 3): GDP and GDP-O lowest in nearly every cell; \
         ITCA/PTCA/ASM errors grow with core count, ASM catastrophically on 8c-L."
    );

    let data = Json::obj(vec![("cells", Json::Arr(data_cells))]);
    args.finish_campaign(&mut campaign, &progress, traces.as_ref());
    args.write_json(&campaign, job_count, data);
}
