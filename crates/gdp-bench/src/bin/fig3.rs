//! Figure 3: average private-mode prediction accuracy.
//!
//! (a) average absolute RMS error of IPC estimates and (b) of SMS-load
//! stall-cycle estimates, for ITCA / PTCA / ASM / GDP / GDP-O across the
//! 2-, 4- and 8-core CMPs and the H/M/L workload categories.

use gdp_bench::{accuracy_cell, banner, Scale};
use gdp_experiments::Technique;
use gdp_workloads::LlcClass;

fn main() {
    let scale = Scale::from_args();
    banner("Figure 3: average private-mode prediction accuracy", scale);

    let header = {
        let mut h = format!("{:8}", "cell");
        for t in Technique::ALL {
            h += &format!(" {:>12}", t.name());
        }
        h
    };

    let mut ipc_rows = Vec::new();
    let mut stall_rows = Vec::new();
    for cores in [2usize, 4, 8] {
        for class in [LlcClass::H, LlcClass::M, LlcClass::L] {
            let cell = accuracy_cell(cores, class, scale);
            let label = format!("{cores}c-{class}");
            let mut ipc_row = format!("{label:8}");
            let mut stall_row = format!("{label:8}");
            for t in 0..Technique::ALL.len() {
                ipc_row += &format!(" {:>12.4}", cell.ipc_rms[t]);
                stall_row += &format!(" {:>12.0}", cell.stall_rms[t]);
            }
            ipc_rows.push(ipc_row);
            stall_rows.push(stall_row);
            eprintln!("[fig3] finished {label}");
        }
    }

    println!("\n(a) IPC estimate, average absolute RMS error");
    println!("{header}");
    for r in &ipc_rows {
        println!("{r}");
    }
    println!("\n(b) SMS-load stall cycles, average absolute RMS error (cycles)");
    println!("{header}");
    for r in &stall_rows {
        println!("{r}");
    }
    println!(
        "\nPaper reference (Fig. 3): GDP and GDP-O lowest in nearly every cell; \
         ITCA/PTCA/ASM errors grow with core count, ASM catastrophically on 8c-L."
    );
}
