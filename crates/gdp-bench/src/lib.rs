//! # gdp-bench — figure and table regeneration harness
//!
//! One binary per table/figure of the paper's evaluation:
//!
//! | Target | Paper artefact |
//! |---|---|
//! | `table1` | Table I — CMP model parameters |
//! | `fig3` | Fig. 3 — IPC / SMS-stall estimation RMS error, 5 techniques |
//! | `fig4` | Fig. 4 — sorted per-benchmark stall-error distributions |
//! | `fig5` | Fig. 5 — CPL / overlap / latency component error distributions |
//! | `fig6` | Fig. 6 — STP under LRU/UCP/ASM/MCP/MCP-O partitioning |
//! | `fig7` | Fig. 7 — GDP-O sensitivity sweeps |
//! | `headline` | §I / §VII headline numbers |
//!
//! Every binary runs through `gdp-runner`: the sweep is flattened into
//! independent jobs (per-workload shared-mode runs — the invasive ASM
//! run is its own job — then per-core private reference runs), executed
//! on a work-stealing pool (`--jobs N`, default all cores), and
//! reassembled in deterministic job order, so stdout tables and result
//! files are **byte-identical for every worker count**. `--json`
//! additionally writes machine-readable results to `results/<name>.json`
//! (see `gdp_runner::report` for the document layout); progress goes to
//! stderr. EXPERIMENTS.md records a reference transcript.

use std::sync::Arc;

use gdp_experiments::{
    transparent_subset, CampaignTraces, ExperimentConfig, PrivateRun, SharedRun, Technique,
    WorkloadAccuracy, WorkloadEval,
};
use gdp_metrics::{mean, Summary};
use gdp_runner::{
    cli, summary_json, CacheCounters, Campaign, Json, Pool, PoolTelemetry, Progress, ScaleFlag,
};
use gdp_telemetry::{log_info, render_profile, MetricsRegistry, TraceRecorder};
use gdp_workloads::{generate_workloads, LlcClass, Workload};

/// Sweep scale selected on the command line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Smallest meaningful sweep (CI / smoke transcripts; ~minutes total).
    Tiny,
    /// Reduced workload counts and sample sizes (default).
    Quick,
    /// The paper's 30/15/5 workloads per class (hours).
    Full,
}

impl From<ScaleFlag> for Scale {
    fn from(f: ScaleFlag) -> Scale {
        match f {
            ScaleFlag::Tiny => Scale::Tiny,
            ScaleFlag::Quick => Scale::Quick,
            ScaleFlag::Full => Scale::Full,
        }
    }
}

impl Scale {
    /// Lower-case name (the `scale` field of result files).
    pub fn name(self) -> &'static str {
        match self {
            Scale::Tiny => "tiny",
            Scale::Quick => "quick",
            Scale::Full => "full",
        }
    }

    /// Workloads per class (H, M, L).
    pub fn class_counts(self) -> (usize, usize, usize) {
        match self {
            Scale::Tiny => (2, 1, 1),
            Scale::Quick => (4, 2, 2),
            Scale::Full => (30, 15, 5),
        }
    }

    /// Experiment configuration for `cores`.
    pub fn xcfg(self, cores: usize) -> ExperimentConfig {
        match self {
            Scale::Tiny => ExperimentConfig::tiny(cores),
            Scale::Quick => ExperimentConfig::quick(cores),
            Scale::Full => ExperimentConfig::scaled(cores),
        }
    }
}

/// Parsed command line of a figure binary (shared `gdp-runner` surface:
/// `--tiny/--quick/--full`, `--jobs N`, `--json`, `--list`, the
/// trace-cache flags `--record`/`--replay`/`--replay-jobs N`/
/// `--trace-dir DIR`, and the
/// registry-backed `--techniques a,b,c` selection; unknown flags and
/// unknown technique ids exit non-zero with usage / the valid-id list).
#[derive(Debug, Clone)]
pub struct BenchArgs {
    /// Binary name (used for progress labels and the results file).
    pub bin: &'static str,
    /// Sweep scale.
    pub scale: Scale,
    /// Worker count.
    pub jobs: usize,
    /// Write `results/<bin>.json`.
    pub json: bool,
    /// `--list`: print the flattened job plan and exit 0.
    pub list: bool,
    /// `--record`: store event traces after simulating.
    pub record: bool,
    /// `--replay`: reuse cached event traces when present.
    pub replay: bool,
    /// `--replay-jobs N`: fan each cached-trace replay across N workers
    /// using the estimator-state checkpoints summarized at record time
    /// (1 = serial replay; results are identical for every N).
    pub replay_jobs: usize,
    /// Trace-cache directory.
    pub trace_dir: String,
    /// `--techniques`: validated registry selection, canonical order;
    /// `None` means the binary's default set.
    pub techniques: Option<Vec<Technique>>,
    /// `--metrics`: collect telemetry and write the full snapshot to
    /// `results/<bin>.metrics.json` (plus a `telemetry` object in the
    /// run record under `--json`).
    pub metrics: bool,
    /// `--metrics-out PATH`: write the snapshot to an explicit path
    /// (implies collection).
    pub metrics_out: Option<String>,
    /// `--trace-out PATH`: write the Chrome trace-event / Perfetto
    /// timeline (one lane per pool worker; wall-clock, outside every
    /// byte-compared surface) to PATH after the run.
    pub trace_out: Option<String>,
    /// `--profile`: print the span-profile table to stderr after the
    /// run (implies collection).
    pub profile: bool,
    /// `--quiet`: stderr diagnostics suppressed (the log level is
    /// already applied globally by the shared CLI parser).
    pub quiet: bool,
    registry: Option<Arc<MetricsRegistry>>,
    pool_telemetry: Option<Arc<PoolTelemetry>>,
    tracer: Option<Arc<TraceRecorder>>,
}

impl BenchArgs {
    /// Parse [`std::env::args`]; prints usage and exits on bad input.
    /// An unknown technique id exits 2 listing every registered id.
    pub fn parse(bin: &'static str) -> BenchArgs {
        let a = cli::parse_or_exit(bin);
        let techniques = a.techniques.as_deref().map(|list| match Technique::parse_list(list) {
            Ok(set) => set,
            Err(e) => {
                eprintln!("{bin}: {e}");
                std::process::exit(2);
            }
        });
        // Fail fast on unwritable output paths: create missing parent
        // directories now and exit 2 with a clear message instead of
        // discarding a finished campaign on the final write.
        for out in [a.metrics_out.as_deref(), a.trace_out.as_deref()].into_iter().flatten() {
            ensure_writable_or_exit(bin, out);
        }
        let wants = a.wants_telemetry();
        let registry = wants.then(MetricsRegistry::shared);
        let tracer = a.trace_out.as_ref().map(|_| TraceRecorder::shared());
        if let (Some(reg), Some(tr)) = (&registry, &tracer) {
            // Before any session resolves its span handles, so every
            // span lands on the timeline.
            reg.set_tracer(Arc::clone(tr));
        }
        BenchArgs {
            bin,
            scale: a.scale.into(),
            jobs: a.jobs(),
            json: a.json,
            list: a.list,
            record: a.record,
            replay: a.replay,
            replay_jobs: a.replay_jobs(),
            trace_dir: a.trace_dir,
            techniques,
            metrics: a.metrics,
            metrics_out: a.metrics_out,
            trace_out: a.trace_out,
            profile: a.profile,
            quiet: a.quiet,
            registry,
            pool_telemetry: wants.then(PoolTelemetry::shared),
            tracer,
        }
    }

    /// The campaign-wide metrics registry, when any telemetry flag
    /// (`--metrics`/`--metrics-out`/`--profile`) asked for one.
    pub fn telemetry(&self) -> Option<Arc<MetricsRegistry>> {
        self.registry.clone()
    }

    /// The technique selection, falling back to the binary's default set.
    pub fn techniques_or(&self, default: &[Technique]) -> Vec<Technique> {
        self.techniques.clone().unwrap_or_else(|| default.to_vec())
    }

    /// The job pool for this invocation (with the scheduling-telemetry
    /// sink attached when telemetry is on, and the trace recorder when
    /// `--trace-out` asked for a timeline).
    pub fn pool(&self) -> Pool {
        let mut p = Pool::new(self.jobs);
        if let Some(t) = &self.pool_telemetry {
            p = p.with_telemetry(Arc::clone(t));
        }
        if let Some(tr) = &self.tracer {
            p = p.with_tracer(Arc::clone(tr));
        }
        p
    }

    /// Start the campaign clock/identity for this invocation.
    pub fn campaign(&self) -> Campaign {
        Campaign::new(self.bin, self.scale.name(), SWEEP_SEED, self.jobs)
    }

    /// The campaign trace policy, when `--record`/`--replay` asked for
    /// one — or, under any telemetry flag, a no-IO policy (neither
    /// recording nor replaying) that exists purely to thread the metrics
    /// registry into every shared and private job. `None` keeps both
    /// the cache and telemetry entirely out of the hot path.
    pub fn traces(&self) -> Option<CampaignTraces> {
        (self.record || self.replay || self.registry.is_some()).then(|| {
            let mut tc = CampaignTraces::new(&self.trace_dir, self.record, self.replay)
                .with_replay_jobs(self.replay_jobs);
            if let Some(reg) = &self.registry {
                tc = tc.with_metrics(Arc::clone(reg));
            }
            tc
        })
    }

    /// Under `--list`, print the flattened job plan (one label per job,
    /// in submission order) and report `true` so the binary exits
    /// without running anything.
    pub fn print_plan(&self, labels: &[String]) -> bool {
        if !self.list {
            return false;
        }
        for l in labels {
            println!("{l}");
        }
        eprintln!("[{}] {} jobs planned", self.bin, labels.len());
        true
    }

    /// End-of-campaign bookkeeping: the stderr `done:` summary line
    /// (with per-job aggregate time when telemetry is on), trace-cache
    /// counters for the run record, and — under any telemetry flag —
    /// the metrics snapshot: exported into the campaign (`telemetry`
    /// run-record object), written to `results/<bin>.metrics.json` (or
    /// `--metrics-out PATH`), and rendered as the `--profile` span
    /// table on stderr.
    pub fn finish_campaign(
        &self,
        campaign: &mut Campaign,
        progress: &Progress,
        traces: Option<&CampaignTraces>,
    ) {
        progress.campaign_done_with(self.pool_telemetry.as_deref());
        if let Some(tc) = traces {
            if self.record || self.replay {
                let s = tc.stats();
                campaign.set_cache(CacheCounters {
                    hits: s.hits,
                    misses: s.misses,
                    stores: s.stores,
                    quarantines: s.quarantines,
                    salvage_dropped: s.salvage_dropped,
                });
                log_info!(
                    "[{}] trace cache: {} hits, {} misses, {} stores ({})",
                    self.bin,
                    s.hits,
                    s.misses,
                    s.stores,
                    self.trace_dir
                );
            }
            if let Some(reg) = &self.registry {
                tc.stats().export(reg);
            }
        }
        if let (Some(tr), Some(path)) = (&self.tracer, &self.trace_out) {
            match tr.write_json(path) {
                Ok(()) => log_info!(
                    "[{}] wrote {path} ({} slices; load it in ui.perfetto.dev)",
                    self.bin,
                    tr.len()
                ),
                Err(e) => eprintln!("{}: cannot write trace to {path}: {e}", self.bin),
            }
        }
        let Some(reg) = &self.registry else { return };
        if let Some(pt) = &self.pool_telemetry {
            pt.export(reg);
        }
        let snap = reg.snapshot();
        if self.profile {
            eprint!("{}", render_profile(&snap, campaign.elapsed()));
        }
        let full = snap.to_json();
        match Json::parse(&full) {
            Ok(j) => campaign.set_telemetry(j),
            Err(e) => eprintln!("{}: malformed metrics snapshot: {e:?}", self.bin),
        }
        // `--trace-out` alone wants a timeline, not a metrics file: the
        // snapshot file is written only when a metrics flag asked for it.
        if !(self.metrics || self.metrics_out.is_some() || self.profile) {
            return;
        }
        let path = self
            .metrics_out
            .clone()
            .unwrap_or_else(|| format!("{}/{}.metrics.json", gdp_runner::RESULTS_DIR, self.bin));
        if let Some(dir) = std::path::Path::new(&path).parent() {
            if !dir.as_os_str().is_empty() {
                let _ = std::fs::create_dir_all(dir);
            }
        }
        match std::fs::write(&path, &full) {
            Ok(()) => log_info!("[{}] wrote {path}", self.bin),
            Err(e) => eprintln!("{}: cannot write metrics to {path}: {e}", self.bin),
        }
    }

    /// Under `--json`, write `data` to `results/<bin>.json` (with the
    /// run record appended) and note the path on stderr.
    pub fn write_json(&self, campaign: &Campaign, job_count: usize, data: Json) {
        if !self.json {
            return;
        }
        match campaign.write(job_count, data) {
            Ok(path) => eprintln!("[{}] wrote {}", self.bin, path.display()),
            Err(e) => {
                eprintln!("{}: cannot write results: {e}", self.bin);
                std::process::exit(1);
            }
        }
    }
}

/// Verify `path` will be writable at the end of the run: create missing
/// parent directories, then open the file for appending (which creates
/// it without truncating an existing one). Returns the first error.
fn ensure_writable(path: &str) -> std::io::Result<()> {
    if let Some(dir) = std::path::Path::new(path).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)?;
        }
    }
    std::fs::OpenOptions::new().append(true).create(true).open(path).map(|_| ())
}

/// Exit 2 with a clear message when an `--metrics-out`/`--trace-out`
/// path cannot be written (checked up front, not after the campaign).
fn ensure_writable_or_exit(bin: &str, path: &str) {
    if let Err(e) = ensure_writable(path) {
        eprintln!("{bin}: cannot write to {path}: {e}");
        std::process::exit(2);
    }
}

/// Workload-generation seed shared by all figures (deterministic output).
pub const SWEEP_SEED: u64 = 2018;

/// One (core count, LLC class) cell of the paper's sweeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SweepCell {
    /// CMP core count (2, 4 or 8).
    pub cores: usize,
    /// Workload LLC-sensitivity class.
    pub class: LlcClass,
}

impl SweepCell {
    /// Display label, e.g. `2c-H`.
    pub fn label(&self) -> String {
        format!("{}c-{}", self.cores, self.class)
    }
}

/// The nine cells of Figs. 3–6: {2,4,8} cores × {H,M,L}.
pub fn all_cells() -> Vec<SweepCell> {
    let mut out = Vec::with_capacity(9);
    for cores in [2usize, 4, 8] {
        for class in [LlcClass::H, LlcClass::M, LlcClass::L] {
            out.push(SweepCell { cores, class });
        }
    }
    out
}

/// The workloads of one class for one core count at the chosen scale.
pub fn class_workloads(cores: usize, class: LlcClass, scale: Scale) -> Vec<Workload> {
    let (h, m, l) = scale.class_counts();
    let count = match class {
        LlcClass::H => h,
        LlcClass::M => m,
        LlcClass::L => l,
    };
    generate_workloads(cores, class, count, SWEEP_SEED)
}

/// Workloads per cell at `scale` (without generating them).
pub fn cell_workload_count(class: LlcClass, scale: Scale) -> usize {
    let (h, m, l) = scale.class_counts();
    match class {
        LlcClass::H => h,
        LlcClass::M => m,
        LlcClass::L => l,
    }
}

/// Total number of jobs [`accuracy_sweep`] will submit for `cells`:
/// per workload, one transparent shared run, one invasive shared run if
/// any invasive technique is evaluated, and one private run per core.
pub fn sweep_job_count(cells: &[SweepCell], scale: Scale, techniques: &[Technique]) -> usize {
    let shared_per_workload = if techniques.iter().any(Technique::is_invasive) { 2 } else { 1 };
    cells
        .iter()
        .map(|c| cell_workload_count(c.class, scale) * (shared_per_workload + c.cores))
        .sum()
}

/// Run the accuracy campaign over `cells` as parallel jobs, reassembled
/// deterministically: `result[i][w]` is workload `w` of `cells[i]`,
/// bit-identical for every pool size.
///
/// The sweep is flattened at two granularities (the flattening the
/// runner subsystem exists for): first one job per (workload ×
/// technique-subset) shared-mode simulation — ASM's invasive run is
/// separate from the transparent run — then one job per (workload ×
/// core) private reference run, the expensive inner loop of the
/// methodology.
pub fn accuracy_sweep(
    cells: &[SweepCell],
    scale: Scale,
    techniques: &[Technique],
    pool: &Pool,
    progress: &Progress,
) -> Vec<Vec<WorkloadAccuracy>> {
    accuracy_sweep_traced(cells, scale, techniques, pool, progress, None)
}

/// Label of one shared-mode job — the single source for both the
/// `--list` plan and execution progress, so the two can never drift.
/// `invasive` carries the invasive sub-set's display names, e.g.
/// `" (ASM)"`, or an empty string for the transparent run.
fn shared_job_label(cell: &SweepCell, workload: &str, invasive: &str) -> String {
    format!("{}/{workload} shared{invasive}", cell.label())
}

/// Display suffix naming an invasive technique sub-set (empty when the
/// sub-set is empty).
fn invasive_suffix(invasive: &[Technique]) -> String {
    if invasive.is_empty() {
        String::new()
    } else {
        let names: Vec<&str> = invasive.iter().map(|t| t.name()).collect();
        format!(" ({})", names.join("+"))
    }
}

/// Label of one private ground-truth job.
fn private_job_label(workload: &str, core: usize) -> String {
    format!("{workload} private core {core}")
}

/// The flattened job plan of [`accuracy_sweep`] as one label per job, in
/// submission order (`--list`; each label names the simulation a cache
/// key covers, which makes cache hits/misses attributable).
pub fn sweep_job_labels(
    cells: &[SweepCell],
    scale: Scale,
    techniques: &[Technique],
) -> Vec<String> {
    let techniques = Technique::canonical(techniques);
    let invasive: Vec<Technique> =
        techniques.iter().copied().filter(Technique::is_invasive).collect();
    let suffix = invasive_suffix(&invasive);
    let mut labels = Vec::new();
    let prep: Vec<Vec<Workload>> =
        cells.iter().map(|c| class_workloads(c.cores, c.class, scale)).collect();
    for (cell, workloads) in cells.iter().zip(&prep) {
        for w in workloads {
            labels.push(shared_job_label(cell, &w.name, ""));
            if !invasive.is_empty() {
                labels.push(shared_job_label(cell, &w.name, &suffix));
            }
        }
    }
    for (cell, workloads) in cells.iter().zip(&prep) {
        for w in workloads {
            for core in 0..cell.cores {
                labels.push(private_job_label(&w.name, core));
            }
        }
    }
    labels
}

/// [`accuracy_sweep`] with an optional trace policy: when `traces` is
/// given, every shared and private job routes through the
/// content-addressed cache (replayed on a hit, simulated — and under
/// `--record` stored — on a miss). Results are bit-identical either way.
pub fn accuracy_sweep_traced(
    cells: &[SweepCell],
    scale: Scale,
    techniques: &[Technique],
    pool: &Pool,
    progress: &Progress,
    traces: Option<&CampaignTraces>,
) -> Vec<Vec<WorkloadAccuracy>> {
    let prep: Vec<(ExperimentConfig, Vec<Workload>)> = cells
        .iter()
        .map(|c| (scale.xcfg(c.cores), class_workloads(c.cores, c.class, scale)))
        .collect();
    let techniques = Technique::canonical(techniques);
    let invasive: Vec<Technique> =
        techniques.iter().copied().filter(Technique::is_invasive).collect();
    let suffix = invasive_suffix(&invasive);
    let transparent = transparent_subset(&techniques);
    let run_shared_job = move |w: &Workload, xcfg: &ExperimentConfig, ts: &[Technique]| match traces
    {
        None => gdp_experiments::run_shared(w, xcfg, ts),
        Some(tc) => tc.shared(w, xcfg, ts),
    };

    // Phase 1: shared-mode runs.
    type SharedJob<'a> = Box<dyn FnOnce() -> SharedRun + Send + 'a>;
    let mut shared_jobs: Vec<SharedJob<'_>> = Vec::new();
    for (cell, (xcfg, workloads)) in cells.iter().zip(&prep) {
        for w in workloads {
            let label = shared_job_label(cell, &w.name, "");
            let transparent = &transparent;
            shared_jobs.push(Box::new(move || {
                let r = run_shared_job(w, xcfg, transparent);
                progress.finish_item(&label);
                r
            }));
            if !invasive.is_empty() {
                let label = shared_job_label(cell, &w.name, &suffix);
                let invasive = &invasive;
                shared_jobs.push(Box::new(move || {
                    let r = run_shared_job(w, xcfg, invasive);
                    progress.finish_item(&label);
                    r
                }));
            }
        }
    }
    let mut shared_results = pool.run(shared_jobs).into_iter();

    // Reassemble shared runs into per-workload evaluations (job order).
    let mut evals: Vec<WorkloadEval> = Vec::new();
    for (xcfg, workloads) in &prep {
        for w in workloads {
            let t_run = shared_results.next().expect("one transparent run per workload");
            let a_run = if invasive.is_empty() {
                None
            } else {
                Some(shared_results.next().expect("one invasive run per workload"))
            };
            evals.push(WorkloadEval::from_runs(w, xcfg, t_run, a_run));
        }
    }

    // Phase 2: per-(workload, core) private reference runs.
    let private_jobs: Vec<_> = evals
        .iter()
        .flat_map(|eval| {
            (0..eval.cores()).map(move |core| {
                move || {
                    let p = match traces {
                        None => eval.run_private_for(core),
                        Some(tc) => tc.private(eval, core),
                    };
                    progress.finish_item(&private_job_label(eval.workload_name(), core));
                    p
                }
            })
        })
        .collect();
    let mut privates = pool.run(private_jobs).into_iter();

    // Phase 3: score and regroup per cell (pure, serial, deterministic).
    let mut accuracies = evals.iter().map(|eval| {
        let ps: Vec<PrivateRun> =
            (0..eval.cores()).map(|_| privates.next().expect("one private run per core")).collect();
        eval.finish(&ps)
    });
    prep.iter()
        .map(|(_, ws)| ws.iter().map(|_| accuracies.next().expect("per workload")).collect())
        .collect()
}

/// Aggregated accuracy numbers for one (core count, class) cell.
#[derive(Debug, Clone)]
pub struct CellAccuracy {
    /// The canonical technique set the per-technique vectors are
    /// indexed by.
    pub techniques: Vec<Technique>,
    /// Mean per-benchmark absolute RMS error of IPC estimates, per
    /// technique in [`CellAccuracy::techniques`] order.
    pub ipc_rms: Vec<f64>,
    /// Mean per-benchmark absolute RMS error of SMS-stall estimates.
    pub stall_rms: Vec<f64>,
    /// Every per-benchmark stall RMS value, per technique (Fig. 4 input).
    pub stall_rms_all: Vec<Vec<f64>>,
    /// Per-benchmark relative RMS errors of CPL / overlap / λ (Fig. 5).
    pub cpl_rel: Vec<f64>,
    /// Overlap estimator relative RMS errors.
    pub overlap_rel: Vec<f64>,
    /// DIEF latency relative RMS errors.
    pub lambda_rel: Vec<f64>,
    /// Worst per-core invasive slowdown observed under ASM.
    pub worst_asm_slowdown: f64,
}

/// Evaluate all workloads of a class serially and aggregate
/// per-benchmark errors (the single-cell convenience entry point; the
/// binaries use [`accuracy_sweep`]).
pub fn accuracy_cell(cores: usize, class: LlcClass, scale: Scale) -> CellAccuracy {
    let cells = [SweepCell { cores, class }];
    let sweep = accuracy_sweep(
        &cells,
        scale,
        &Technique::ALL,
        &Pool::new(1),
        &Progress::silent(sweep_job_count(&cells, scale, &Technique::ALL)),
    );
    aggregate(&sweep[0])
}

/// Aggregate a set of workload evaluations into a cell. All evaluations
/// must share one technique set (the index space of the output vectors).
pub fn aggregate(results: &[WorkloadAccuracy]) -> CellAccuracy {
    let techniques: Vec<Technique> =
        results.first().map(|r| r.techniques.clone()).unwrap_or_default();
    debug_assert!(results.iter().all(|r| r.techniques == techniques));
    let nt = techniques.len();
    let mut ipc: Vec<Vec<f64>> = vec![Vec::new(); nt];
    let mut stall: Vec<Vec<f64>> = vec![Vec::new(); nt];
    let mut cpl = Vec::new();
    let mut overlap = Vec::new();
    let mut lambda = Vec::new();
    let mut worst = 1.0f64;
    for r in results {
        for b in &r.benches {
            for t in 0..nt {
                if !b.ipc_err[t].is_empty() {
                    ipc[t].push(b.ipc_err[t].rms_abs());
                    stall[t].push(b.stall_err[t].rms_abs());
                }
            }
            if !b.cpl_err.is_empty() {
                cpl.push(b.cpl_err.rms_rel().abs() * 100.0);
            }
            if !b.overlap_err.is_empty() {
                overlap.push(b.overlap_err.rms_rel().abs() * 100.0);
            }
            if !b.lambda_err.is_empty() {
                lambda.push(b.lambda_err.rms_rel().abs() * 100.0);
            }
        }
        for s in &r.invasive_slowdown {
            worst = worst.max(*s);
        }
    }
    CellAccuracy {
        techniques,
        ipc_rms: ipc.iter().map(|v| mean(v)).collect(),
        stall_rms: stall.iter().map(|v| mean(v)).collect(),
        stall_rms_all: stall,
        cpl_rel: cpl,
        overlap_rel: overlap,
        lambda_rel: lambda,
        worst_asm_slowdown: worst,
    }
}

/// Per-technique values as an ordered JSON object keyed by the
/// registry display labels of `techniques`.
pub fn technique_json(techniques: &[Technique], values: &[f64]) -> Json {
    Json::Obj(
        techniques
            .iter()
            .zip(values)
            .map(|(t, v)| (t.name().to_string(), Json::from(*v)))
            .collect(),
    )
}

/// One cell's aggregated accuracy as JSON (shared by fig3/fig5 and the
/// determinism suite), labelled from the cell's technique set.
pub fn cell_accuracy_json(label: &str, cell: &CellAccuracy) -> Json {
    Json::obj(vec![
        ("cell", Json::from(label)),
        ("ipc_rms", technique_json(&cell.techniques, &cell.ipc_rms)),
        ("stall_rms", technique_json(&cell.techniques, &cell.stall_rms)),
        ("cpl_rel_pct", summary_json(&Summary::of(&cell.cpl_rel))),
        ("overlap_rel_pct", summary_json(&Summary::of(&cell.overlap_rel))),
        ("lambda_rel_pct", summary_json(&Summary::of(&cell.lambda_rel))),
        ("worst_asm_slowdown", Json::from(cell.worst_asm_slowdown)),
    ])
}

/// Print a header banner for a figure binary.
pub fn banner(title: &str, scale: Scale) {
    println!("================================================================");
    println!("{title}");
    println!(
        "scale: {:?} (--tiny/--quick/--full; full = the paper's 30/15/5 workloads per class)",
        scale
    );
    println!("================================================================");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_controls_counts() {
        assert_eq!(Scale::Tiny.class_counts(), (2, 1, 1));
        assert_eq!(Scale::Quick.class_counts(), (4, 2, 2));
        assert_eq!(Scale::Full.class_counts(), (30, 15, 5));
        assert!(Scale::Quick.xcfg(2).sample_instrs < Scale::Full.xcfg(2).sample_instrs);
        assert!(Scale::Tiny.xcfg(2).sample_instrs < Scale::Quick.xcfg(2).sample_instrs);
    }

    #[test]
    fn class_workload_generation_is_deterministic() {
        let a = class_workloads(2, LlcClass::H, Scale::Quick);
        let b = class_workloads(2, LlcClass::H, Scale::Quick);
        assert_eq!(a.len(), 4);
        assert_eq!(a[0].names(), b[0].names());
    }

    #[test]
    fn scale_flags_map_to_scales() {
        assert_eq!(Scale::from(ScaleFlag::Tiny), Scale::Tiny);
        assert_eq!(Scale::from(ScaleFlag::Quick), Scale::Quick);
        assert_eq!(Scale::from(ScaleFlag::Full), Scale::Full);
        assert_eq!(Scale::Tiny.name(), "tiny");
    }

    #[test]
    fn job_labels_match_the_job_count_and_name_every_phase() {
        let cells = all_cells();
        for techniques in [&Technique::ALL[..], &[Technique::GDP][..]] {
            let labels = sweep_job_labels(&cells, Scale::Tiny, techniques);
            assert_eq!(labels.len(), sweep_job_count(&cells, Scale::Tiny, techniques));
            assert!(labels.iter().any(|l| l.ends_with("shared")));
            assert!(labels.iter().any(|l| l.contains("private core")));
            let has_asm = labels.iter().any(|l| l.contains("(ASM)"));
            assert_eq!(has_asm, techniques.contains(&Technique::ASM));
        }
    }

    #[test]
    fn ensure_writable_creates_parents_and_rejects_bad_paths() {
        let dir = std::env::temp_dir().join(format!("gdp-bench-writable-{}", std::process::id()));
        let nested = dir.join("a/b/out.json");
        let nested = nested.to_str().unwrap();
        assert!(ensure_writable(nested).is_ok(), "missing parents are created");
        assert!(dir.join("a/b").is_dir());
        // Probing must not truncate an existing file.
        std::fs::write(nested, b"keep").unwrap();
        assert!(ensure_writable(nested).is_ok());
        assert_eq!(std::fs::read(nested).unwrap(), b"keep");
        // A path through a *file* cannot gain a parent directory.
        let through_file = dir.join("a/b/out.json/x.json");
        assert!(ensure_writable(through_file.to_str().unwrap()).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn job_count_accounts_for_shared_and_private_jobs() {
        let cells = [
            SweepCell { cores: 2, class: LlcClass::H },
            SweepCell { cores: 4, class: LlcClass::M },
        ];
        // Tiny: 2 H workloads, 1 M workload. With ASM: per workload
        // 2 shared + cores private jobs.
        assert_eq!(
            sweep_job_count(&cells, Scale::Tiny, &Technique::ALL),
            2 * (2 + 2) + 1 * (2 + 4)
        );
        // Without ASM, one shared job per workload.
        assert_eq!(
            sweep_job_count(&cells, Scale::Tiny, &[Technique::GDP]),
            2 * (1 + 2) + 1 * (1 + 4)
        );
        assert_eq!(all_cells().len(), 9);
        assert_eq!(all_cells()[0].label(), "2c-H");
    }
}
