//! # gdp-bench — figure and table regeneration harness
//!
//! One binary per table/figure of the paper's evaluation:
//!
//! | Target | Paper artefact |
//! |---|---|
//! | `table1` | Table I — CMP model parameters |
//! | `fig3` | Fig. 3 — IPC / SMS-stall estimation RMS error, 5 techniques |
//! | `fig4` | Fig. 4 — sorted per-benchmark stall-error distributions |
//! | `fig5` | Fig. 5 — CPL / overlap / latency component error distributions |
//! | `fig6` | Fig. 6 — STP under LRU/UCP/ASM/MCP/MCP-O partitioning |
//! | `fig7` | Fig. 7 — GDP-O sensitivity sweeps |
//! | `headline` | §I / §VII headline numbers |
//!
//! Every binary accepts `--quick` (fewer workloads, shorter samples;
//! the default) and `--full` (paper-scale workload counts — hours).
//! Results go to stdout as aligned tables; EXPERIMENTS.md records a
//! reference transcript.

use gdp_experiments::{evaluate_workload, ExperimentConfig, Technique, WorkloadAccuracy};
use gdp_metrics::mean;
use gdp_workloads::{generate_workloads, LlcClass, Workload};

/// Sweep scale selected on the command line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Smallest meaningful sweep (CI / smoke transcripts; ~minutes total).
    Tiny,
    /// Reduced workload counts and sample sizes (default).
    Quick,
    /// The paper's 30/15/5 workloads per class (hours).
    Full,
}

impl Scale {
    /// Parse from argv: `--full` / `--tiny` select those scales, anything
    /// else quick.
    pub fn from_args() -> Scale {
        if std::env::args().any(|a| a == "--full") {
            Scale::Full
        } else if std::env::args().any(|a| a == "--tiny") {
            Scale::Tiny
        } else {
            Scale::Quick
        }
    }

    /// Workloads per class (H, M, L).
    pub fn class_counts(self) -> (usize, usize, usize) {
        match self {
            Scale::Tiny => (2, 1, 1),
            Scale::Quick => (4, 2, 2),
            Scale::Full => (30, 15, 5),
        }
    }

    /// Experiment configuration for `cores`.
    pub fn xcfg(self, cores: usize) -> ExperimentConfig {
        match self {
            Scale::Tiny => {
                let mut x = ExperimentConfig::quick(cores);
                x.sample_instrs = 12_000;
                x.interval_cycles = 15_000;
                x.max_cycles_per_instr = 250;
                x
            }
            Scale::Quick => ExperimentConfig::quick(cores),
            Scale::Full => ExperimentConfig::scaled(cores),
        }
    }
}

/// Workload-generation seed shared by all figures (deterministic output).
pub const SWEEP_SEED: u64 = 2018;

/// The workloads of one class for one core count at the chosen scale.
pub fn class_workloads(cores: usize, class: LlcClass, scale: Scale) -> Vec<Workload> {
    let (h, m, l) = scale.class_counts();
    let count = match class {
        LlcClass::H => h,
        LlcClass::M => m,
        LlcClass::L => l,
    };
    generate_workloads(cores, class, count, SWEEP_SEED)
}

/// Aggregated accuracy numbers for one (core count, class) cell.
#[derive(Debug, Clone)]
pub struct CellAccuracy {
    /// Mean per-benchmark absolute RMS error of IPC estimates, per
    /// technique in [`Technique::ALL`] order.
    pub ipc_rms: Vec<f64>,
    /// Mean per-benchmark absolute RMS error of SMS-stall estimates.
    pub stall_rms: Vec<f64>,
    /// Every per-benchmark stall RMS value, per technique (Fig. 4 input).
    pub stall_rms_all: Vec<Vec<f64>>,
    /// Per-benchmark relative RMS errors of CPL / overlap / λ (Fig. 5).
    pub cpl_rel: Vec<f64>,
    /// Overlap estimator relative RMS errors.
    pub overlap_rel: Vec<f64>,
    /// DIEF latency relative RMS errors.
    pub lambda_rel: Vec<f64>,
    /// Worst per-core invasive slowdown observed under ASM.
    pub worst_asm_slowdown: f64,
}

/// Evaluate all workloads of a class and aggregate per-benchmark errors.
pub fn accuracy_cell(cores: usize, class: LlcClass, scale: Scale) -> CellAccuracy {
    let xcfg = scale.xcfg(cores);
    let workloads = class_workloads(cores, class, scale);
    let results: Vec<WorkloadAccuracy> =
        workloads.iter().map(|w| evaluate_workload(w, &xcfg)).collect();
    aggregate(&results)
}

/// Aggregate a set of workload evaluations into a cell.
pub fn aggregate(results: &[WorkloadAccuracy]) -> CellAccuracy {
    let nt = Technique::ALL.len();
    let mut ipc: Vec<Vec<f64>> = vec![Vec::new(); nt];
    let mut stall: Vec<Vec<f64>> = vec![Vec::new(); nt];
    let mut cpl = Vec::new();
    let mut overlap = Vec::new();
    let mut lambda = Vec::new();
    let mut worst = 1.0f64;
    for r in results {
        for b in &r.benches {
            for t in 0..nt {
                if !b.ipc_err[t].is_empty() {
                    ipc[t].push(b.ipc_err[t].rms_abs());
                    stall[t].push(b.stall_err[t].rms_abs());
                }
            }
            if !b.cpl_err.is_empty() {
                cpl.push(b.cpl_err.rms_rel().abs() * 100.0);
            }
            if !b.overlap_err.is_empty() {
                overlap.push(b.overlap_err.rms_rel().abs() * 100.0);
            }
            if !b.lambda_err.is_empty() {
                lambda.push(b.lambda_err.rms_rel().abs() * 100.0);
            }
        }
        for s in &r.invasive_slowdown {
            worst = worst.max(*s);
        }
    }
    CellAccuracy {
        ipc_rms: ipc.iter().map(|v| mean(v)).collect(),
        stall_rms: stall.iter().map(|v| mean(v)).collect(),
        stall_rms_all: stall,
        cpl_rel: cpl,
        overlap_rel: overlap,
        lambda_rel: lambda,
        worst_asm_slowdown: worst,
    }
}

/// Print a header banner for a figure binary.
pub fn banner(title: &str, scale: Scale) {
    println!("================================================================");
    println!("{title}");
    println!(
        "scale: {:?} (--tiny/--quick/--full; full = the paper's 30/15/5 workloads per class)",
        scale
    );
    println!("================================================================");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_controls_counts() {
        assert_eq!(Scale::Tiny.class_counts(), (2, 1, 1));
        assert_eq!(Scale::Quick.class_counts(), (4, 2, 2));
        assert_eq!(Scale::Full.class_counts(), (30, 15, 5));
        assert!(Scale::Quick.xcfg(2).sample_instrs < Scale::Full.xcfg(2).sample_instrs);
        assert!(Scale::Tiny.xcfg(2).sample_instrs < Scale::Quick.xcfg(2).sample_instrs);
    }

    #[test]
    fn class_workload_generation_is_deterministic() {
        let a = class_workloads(2, LlcClass::H, Scale::Quick);
        let b = class_workloads(2, LlcClass::H, Scale::Quick);
        assert_eq!(a.len(), 4);
        assert_eq!(a[0].names(), b[0].names());
    }
}
