//! Estimator-session benchmark: `observe_all`/`estimate_all` throughput
//! through the streaming session API.
//!
//! A shared-mode trace is recorded once (setup, unmeasured); each
//! benchmark then drives a `ReplaySession` over it — exactly the
//! observe/estimate call sequence a live `EstimationSession` issues, at
//! memory speed, so the measured time is the *estimator* cost per event,
//! isolated from the simulator. Scenarios cover the single-technique
//! embedding case, the paper's transparent comparison set, and the full
//! registry. `BENCH_session.json` at the repo root records the baseline
//! events/s.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use gdp_bench::{Scale, SWEEP_SEED};
use gdp_experiments::{
    record_shared, summarize_checkpoints, ParallelReplaySession, ReplaySession, Technique,
};
use gdp_runner::Pool;
use gdp_workloads::{generate_workloads, LlcClass};

fn bench_session(c: &mut Criterion) {
    let workload = generate_workloads(2, LlcClass::H, 1, SWEEP_SEED).remove(0);
    let xcfg = Scale::Tiny.xcfg(2);
    let transparent: Vec<Technique> =
        Technique::ALL.iter().copied().filter(|t| !t.is_invasive()).collect();
    let (_, trace) = record_shared(&workload, &xcfg, &transparent);
    let events = trace.event_count();
    eprintln!(
        "estimator_session: {} intervals, {events} events per replay (events/s = events / median)",
        trace.intervals.len()
    );

    let scenarios: Vec<(&str, Vec<Technique>)> = vec![
        ("gdp-o", vec![Technique::GDP_O]),
        ("transparent4", transparent.clone()),
        // Throughput-only: replaying the invasive ASM over a transparent
        // trace has no live counterpart (see ReplaySession::new); here it
        // just exercises every registered estimator's observe/estimate cost.
        ("registry6", Technique::all_registered()),
    ];
    for (name, set) in scenarios {
        c.bench_function(&format!("session/replay/{name}"), |b| {
            b.iter_batched(
                || ReplaySession::new(&trace, &xcfg, &set),
                |session| session.into_report(),
                BatchSize::SmallInput,
            );
        });
    }

    // The per-event oracle (`GDP_ESTIMATOR=per-event` hatch): identical
    // output, pre-batch dispatch — one virtual call per estimator per
    // event. The delta vs `replay/transparent4` is what batched
    // dispatch buys.
    c.bench_function("session/replay/transparent4/per-event", |b| {
        b.iter_batched(
            || {
                ReplaySession::new(&trace, &xcfg, &transparent)
                    .with_dispatch(gdp_core::DispatchMode::PerEvent)
            },
            |session| session.into_report(),
            BatchSize::SmallInput,
        );
    });

    // Bank-parallel dispatch: each technique's observe_batch fanned
    // across a 4-worker pool inside every interval (observe and
    // estimate phases are separate fan-outs), bit-identical to serial.
    c.bench_function("session/replay/transparent4/bank-parallel", |b| {
        b.iter_batched(
            || ReplaySession::new(&trace, &xcfg, &transparent).with_pool(Pool::new(4)),
            |session| session.into_report(),
            BatchSize::SmallInput,
        );
    });

    // Segmented parallel replay over summarized estimator-state
    // checkpoints (summarization is setup, as in a recorded campaign):
    // the same transparent4 work fanned across a 4-worker pool,
    // bit-identical to the serial scenario above.
    let checkpoints = summarize_checkpoints(&trace, &xcfg);
    c.bench_function("session/replay_parallel/transparent4", |b| {
        b.iter_batched(
            || {
                ParallelReplaySession::new(
                    &trace,
                    &xcfg,
                    &transparent,
                    Some(&checkpoints),
                    Pool::new(4),
                )
            },
            |session| session.into_report(),
            BatchSize::SmallInput,
        );
    });

    // Instrumentation overhead: identical replays with a telemetry
    // registry attached — per-interval span enters plus event counting.
    // The delta vs the unmetered scenarios above is the hot-path cost
    // of `--metrics` (BENCH_session.json tracks it; budget ≤2%).
    let registry = gdp_telemetry::MetricsRegistry::shared();
    for (name, set) in [("gdp-o", vec![Technique::GDP_O]), ("transparent4", transparent.clone())] {
        let reg = std::sync::Arc::clone(&registry);
        c.bench_function(&format!("session/replay/{name}/metered"), |b| {
            b.iter_batched(
                || {
                    ReplaySession::new(&trace, &xcfg, &set)
                        .with_metrics(std::sync::Arc::clone(&reg))
                },
                |session| session.into_report(),
                BatchSize::SmallInput,
            );
        });
    }

    // The streaming poll path: advance interval-by-interval and poll
    // after each, the embedding host's cadence (same work + poll
    // bookkeeping; confirms polling adds nothing measurable).
    c.bench_function("session/replay/gdp-o/streamed", |b| {
        b.iter_batched(
            || ReplaySession::new(&trace, &xcfg, &[Technique::GDP_O]),
            |mut session| {
                let mut rows = 0usize;
                while !session.done() {
                    session.advance_intervals(1);
                    rows += session.poll_estimates().len();
                }
                (session.into_report(), rows)
            },
            BatchSize::SmallInput,
        );
    });
}

criterion_group!(benches, bench_session);
criterion_main!(benches);
