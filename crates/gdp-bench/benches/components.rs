//! Criterion micro-benchmarks for the substrate and accounting hardware
//! models: per-operation costs of the structures the paper sizes in
//! hardware (PRB/PCB updates, ATD lookups, cache/DRAM/ring operations)
//! plus whole-system simulation throughput.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use gdp_core::GdpUnit;
use gdp_dief::Atd;
use gdp_sim::core::{Instr, InstrStream};
use gdp_sim::mem::{Cache, MemoryController};
use gdp_sim::probe::ProbeEvent;
use gdp_sim::types::{CoreId, ReqId};
use gdp_sim::{DramConfig, SimConfig, System};

fn bench_cache(c: &mut Criterion) {
    let cfg = SimConfig::scaled(4);
    c.bench_function("cache/llc_access_miss_fill", |b| {
        let mut cache = Cache::new(&cfg.llc);
        let mut addr = 0u64;
        b.iter(|| {
            cache.access(addr, false);
            cache.fill(addr, CoreId(0), false);
            addr = addr.wrapping_add(64);
        });
    });
}

fn bench_atd(c: &mut Criterion) {
    c.bench_function("dief/atd_sampled_access", |b| {
        let mut atd = Atd::new(1024, 32, 16);
        let mut i = 0u64;
        b.iter(|| {
            atd.access((i % 65_536) * 64);
            i = i.wrapping_mul(6364136223846793005).wrapping_add(1);
        });
    });
}

fn bench_gdp_unit(c: &mut Criterion) {
    c.bench_function("gdp/prb_issue_complete_resume", |b| {
        let mut unit = GdpUnit::new(32);
        let mut t = 0u64;
        b.iter(|| {
            let a = 0x40 * (t % 64);
            unit.observe(&ProbeEvent::LoadL1Miss {
                core: CoreId(0),
                req: ReqId(t),
                block: a,
                cycle: t,
            });
            unit.observe(&ProbeEvent::LoadL1MissDone {
                core: CoreId(0),
                req: ReqId(t),
                block: a,
                cycle: t + 200,
                sms: true,
                latency: 200,
                interference: Default::default(),
                llc_hit: Some(true),
                post_llc: 0,
            });
            unit.observe(&ProbeEvent::Stall {
                core: CoreId(0),
                start: t + 10,
                end: t + 201,
                cause: gdp_sim::StallCause::Load,
                blocking_block: Some(a),
                blocking_req: Some(ReqId(t)),
                blocking_sms: Some(true),
                blocking_interference: None,
            });
            t += 300;
            if t % 30_000 == 0 {
                let _ = unit.take_cpl(t);
                let _ = unit.take_average_overlap(t);
            }
        });
    });
}

fn bench_dram(c: &mut Criterion) {
    c.bench_function("dram/frfcfs_tick_with_queue", |b| {
        b.iter_batched(
            || {
                let mut mc = MemoryController::new(&DramConfig::ddr2_800(1), 4);
                for i in 0..32u64 {
                    mc.enqueue_read(ReqId(i), CoreId((i % 4) as u8), i * 4096, 0);
                }
                mc
            },
            |mut mc| {
                let mut out = Vec::new();
                for t in 0..512u64 {
                    mc.tick(t, &mut out);
                }
                out
            },
            BatchSize::SmallInput,
        );
    });
}

fn bench_system(c: &mut Criterion) {
    c.bench_function("system/4core_step_x1000", |b| {
        let cfg = SimConfig::scaled(4);
        let prog: Vec<Instr> = (0..512).map(|i| Instr::load(0x100000 + i * 512, &[])).collect();
        b.iter_batched(
            || {
                System::new(
                    cfg.clone(),
                    (0..4)
                        .map(|c| {
                            let mut p = prog.clone();
                            for ins in &mut p {
                                ins.addr += (c as u64) << 36;
                            }
                            InstrStream::cyclic(p)
                        })
                        .collect(),
                )
            },
            |mut sys| {
                sys.run_cycles(1_000);
                sys
            },
            BatchSize::SmallInput,
        );
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_cache, bench_atd, bench_gdp_unit, bench_dram, bench_system
}
criterion_main!(benches);
