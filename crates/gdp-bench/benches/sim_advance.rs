//! Engine benchmark: the event-driven cycle-skipping engine
//! (`System::advance`) against the step-by-1 reference engine
//! (`System::step`) on campaign-representative workloads.
//!
//! Three scenarios span the campaign's cost profile:
//!
//! * `private_membound` — a memory-bound benchmark alone on the CMP (the
//!   per-core ground-truth runs of Figs. 3–5): long DRAM stalls, the
//!   engine's best case.
//! * `shared_2c_h` — a 2-core high-interference workload: both cores
//!   stall together often.
//! * `shared_8c_h` — an 8-core high-interference workload: dense memory
//!   events bound the skip windows; the quiet-core fast path carries the
//!   win.
//!
//! Each benchmark simulates a fixed cycle budget from cold, so the
//! reported time *is* the engine cost for that budget; `BENCH_sim.json`
//! at the repo root records the baseline numbers for the perf
//! trajectory.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use gdp_bench::SWEEP_SEED;
use gdp_sim::core::InstrStream;
use gdp_sim::{SimConfig, System};
use gdp_workloads::{by_name, generate_workloads, LlcClass, Workload};

fn workload(cores: usize) -> Workload {
    generate_workloads(cores, LlcClass::H, 1, SWEEP_SEED).remove(0)
}

/// One benchmark pair: the scenario under both engines.
fn engine_pair(
    c: &mut Criterion,
    name: &str,
    cores: usize,
    mk_streams: impl Fn() -> Vec<InstrStream>,
    cycles: u64,
) {
    let mk = || {
        let cfg = SimConfig::scaled(cores);
        System::new(cfg, mk_streams())
    };
    c.bench_function(&format!("engine/{name}/step"), |b| {
        b.iter_batched(
            mk,
            |mut sys| {
                for _ in 0..cycles {
                    sys.step();
                }
                sys
            },
            BatchSize::SmallInput,
        );
    });
    c.bench_function(&format!("engine/{name}/advance"), |b| {
        b.iter_batched(
            mk,
            |mut sys| {
                sys.run_cycles(cycles); // event-driven, bit-identical
                sys
            },
            BatchSize::SmallInput,
        );
    });
}

fn bench_engines(c: &mut Criterion) {
    // ammp is the suite's pointer chaser: serialized DRAM misses, the
    // exact profile of a Fig. 3/5 private ground-truth run.
    let chaser = by_name("ammp").expect("suite benchmark");
    engine_pair(c, "private_membound", 2, move || vec![chaser.stream(0)], 150_000);
    let w2 = workload(2);
    engine_pair(c, "shared_2c_h", 2, move || w2.streams(), 60_000);
    let w8 = workload(8);
    engine_pair(c, "shared_8c_h", 8, move || w8.streams(), 60_000);
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_engines
}
criterion_main!(benches);
