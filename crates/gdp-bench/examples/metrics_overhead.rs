//! Paired A/B measurement of telemetry's hot-path overhead.
//!
//! The criterion scenarios in `benches/estimator_session.rs` measure the
//! metered and unmetered replays in separate blocks, so on a busy
//! container their deltas drown in run-to-run drift (the *unmetered*
//! scenario's own medians scatter several percent between invocations).
//! This harness interleaves the two variants round by round — unmetered
//! then metered, order flipped every round — so slow phases hit both
//! sides equally, and reports the median of the per-round paired ratios:
//! the statistic BENCH_session.json records for the ≤2% overhead budget.
//!
//! ```console
//! $ cargo run --release -p gdp-bench --example metrics_overhead
//! ```

use std::sync::Arc;
use std::time::Instant;

use gdp_bench::{Scale, SWEEP_SEED};
use gdp_experiments::{record_shared, ReplaySession, Technique};
use gdp_telemetry::MetricsRegistry;
use gdp_workloads::{generate_workloads, LlcClass};

fn main() {
    let workload = generate_workloads(2, LlcClass::H, 1, SWEEP_SEED).remove(0);
    let xcfg = Scale::Tiny.xcfg(2);
    let transparent: Vec<Technique> =
        Technique::ALL.iter().copied().filter(|t| !t.is_invasive()).collect();
    let (_, trace) = record_shared(&workload, &xcfg, &transparent);
    let registry = MetricsRegistry::shared();

    for (name, set) in [("gdp-o", vec![Technique::GDP_O]), ("transparent4", transparent.clone())] {
        const ROUNDS: usize = 101;
        let mut plain = Vec::with_capacity(ROUNDS);
        let mut metered = Vec::with_capacity(ROUNDS);
        let mut ratios = Vec::with_capacity(ROUNDS);
        // Warm-up: one unmeasured replay of each variant.
        ReplaySession::new(&trace, &xcfg, &set).into_report();
        ReplaySession::new(&trace, &xcfg, &set).with_metrics(Arc::clone(&registry)).into_report();
        for round in 0..ROUNDS {
            let time_plain = || {
                let s = ReplaySession::new(&trace, &xcfg, &set);
                let t = Instant::now();
                let r = s.into_report();
                let d = t.elapsed().as_secs_f64();
                std::hint::black_box(r);
                d
            };
            let time_metered = || {
                let s = ReplaySession::new(&trace, &xcfg, &set).with_metrics(Arc::clone(&registry));
                let t = Instant::now();
                let r = s.into_report();
                let d = t.elapsed().as_secs_f64();
                std::hint::black_box(r);
                d
            };
            // Alternate order so any slow phase penalizes both variants.
            let (p, m) = if round % 2 == 0 {
                let p = time_plain();
                let m = time_metered();
                (p, m)
            } else {
                let m = time_metered();
                let p = time_plain();
                (p, m)
            };
            plain.push(p);
            metered.push(m);
            ratios.push(m / p);
        }
        let med = |v: &mut Vec<f64>| {
            v.sort_by(|a, b| a.total_cmp(b));
            v[v.len() / 2]
        };
        let (p, m, r) = (med(&mut plain), med(&mut metered), med(&mut ratios));
        println!(
            "{name:<14} plain {:8.3} ms   metered {:8.3} ms   median paired overhead {:+.2}%",
            p * 1e3,
            m * 1e3,
            (r - 1.0) * 100.0
        );
    }
}
