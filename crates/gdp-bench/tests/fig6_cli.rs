//! fig6's trace-cache flags: the invasive policy studies cannot use the
//! trace cache, and the binary must say so on stderr instead of silently
//! accepting-and-ignoring `--record`/`--replay`.

use std::process::Command;

fn fig6(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_fig6")).args(args).output().expect("fig6 binary must run")
}

#[test]
fn record_replay_flags_warn_that_the_cache_is_bypassed() {
    // `--list` exits after printing the job plan, keeping the test fast;
    // the warning must already have been emitted by then.
    for flags in [&["--tiny", "--list", "--record"][..], &["--tiny", "--list", "--replay"][..]] {
        let out = fig6(flags);
        assert!(out.status.success(), "fig6 {flags:?} must exit 0");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains("bypass the trace cache"),
            "fig6 {flags:?} must warn that --record/--replay are ignored; stderr: {stderr}"
        );
        assert!(
            stderr.contains("--record/--replay are ignored"),
            "warning must name the ignored flags; stderr: {stderr}"
        );
    }
}

#[test]
fn plain_invocations_do_not_warn() {
    let out = fig6(&["--tiny", "--list"]);
    assert!(out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        !stderr.contains("bypass the trace cache"),
        "no cache flags, no warning; stderr: {stderr}"
    );
    // The job plan itself goes to stdout.
    assert!(!out.stdout.is_empty(), "--list must print the job plan");
}
