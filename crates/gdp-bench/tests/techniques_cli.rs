//! The registry-backed `--techniques` surface of all seven campaign
//! binaries, plus the registry round-trip contract the JSON labels rest
//! on.

use std::process::Command;

use gdp_bench::technique_json;
use gdp_experiments::{registry, Technique};

/// One shared helper asserting a binary's unknown-technique behavior:
/// exit code 2 and the full valid-id list on stderr. Every campaign
/// binary goes through it, so none can drift to a different exit code
/// or a truncated listing.
fn assert_rejects_unknown_technique(bin_name: &str, bin_path: &str) {
    let out = Command::new(bin_path)
        .args(["--tiny", "--techniques", "definitely-not-a-technique"])
        .output()
        .unwrap_or_else(|e| panic!("{bin_name}: cannot run {bin_path}: {e}"));
    assert_eq!(out.status.code(), Some(2), "{bin_name}: unknown technique id must exit 2");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("unknown technique `definitely-not-a-technique`"),
        "{bin_name}: stderr must name the bad id: {stderr}"
    );
    let ids = registry().ids().join(", ");
    assert!(
        stderr.contains(&format!("valid: {ids}")),
        "{bin_name}: stderr must list every valid id ({ids}): {stderr}"
    );
}

#[test]
fn all_seven_binaries_reject_unknown_technique_ids() {
    for (name, path) in [
        ("table1", env!("CARGO_BIN_EXE_table1")),
        ("fig3", env!("CARGO_BIN_EXE_fig3")),
        ("fig4", env!("CARGO_BIN_EXE_fig4")),
        ("fig5", env!("CARGO_BIN_EXE_fig5")),
        ("fig6", env!("CARGO_BIN_EXE_fig6")),
        ("fig7", env!("CARGO_BIN_EXE_fig7")),
        ("headline", env!("CARGO_BIN_EXE_headline")),
    ] {
        assert_rejects_unknown_technique(name, path);
    }
}

#[test]
fn techniques_flag_drives_the_list_plan() {
    // A transparent-only selection drops the invasive shared jobs from
    // the plan; the labels come from the same single source execution
    // progress uses.
    let full =
        Command::new(env!("CARGO_BIN_EXE_fig3")).args(["--tiny", "--list"]).output().unwrap();
    let subset = Command::new(env!("CARGO_BIN_EXE_fig3"))
        .args(["--tiny", "--list", "--techniques", "gdp,itca"])
        .output()
        .unwrap();
    assert!(full.status.success() && subset.status.success());
    let full = String::from_utf8_lossy(&full.stdout);
    let subset = String::from_utf8_lossy(&subset.stdout);
    assert!(full.lines().any(|l| l.ends_with("(ASM)")), "full plan has invasive jobs");
    assert!(!subset.lines().any(|l| l.ends_with("(ASM)")), "subset plan must not");
    assert!(subset.lines().count() < full.lines().count());
}

#[test]
fn every_registered_id_round_trips_to_its_json_label() {
    // id → registry → factory → estimator name → JSON label: one chain,
    // no `match` anywhere. The estimator's self-reported name must equal
    // the descriptor label, which must be exactly the key technique_json
    // emits.
    let cfg = gdp_experiments::ExperimentConfig::tiny(2).technique_config();
    for desc in registry().iter() {
        let t = Technique::from_id(desc.id).expect("id resolves");
        let est = t.build(&cfg);
        assert_eq!(est.name(), desc.label, "{}: estimator name vs label", desc.id);
        let json = technique_json(&[t], &[1.0]);
        let text = json.to_string();
        assert!(
            text.contains(&format!("\"{}\"", desc.label)),
            "{}: JSON label must be the registry label: {text}",
            desc.id
        );
    }
    assert_eq!(registry().len(), 6, "five default techniques plus dief");
    assert_eq!(registry().default_set().len(), Technique::ALL.len());
}
