//! Parallel-equals-serial: the campaign runner's core guarantee.
//!
//! A fig3-style tiny sweep executed with one worker and with four
//! workers must produce **byte-identical** aggregated results — the
//! serialized `data` section of the results document is compared as a
//! string, which is exactly what lands in `results/<figure>.json` and on
//! stdout.

use gdp_bench::{accuracy_sweep, aggregate, cell_accuracy_json, sweep_job_count, Scale, SweepCell};
use gdp_experiments::Technique;
use gdp_runner::{Json, Pool, Progress};
use gdp_workloads::LlcClass;

fn tiny_fig3_data(workers: usize) -> String {
    // One 2-core cell keeps the wall-clock of the (debug-build) test
    // suite sane while still exercising multi-job scheduling: at tiny
    // scale this is 2 workloads × (2 shared jobs + 2 private jobs) = 8
    // jobs racing on up to 4 workers.
    let cells = [SweepCell { cores: 2, class: LlcClass::H }];
    let scale = Scale::Tiny;
    let progress = Progress::silent(sweep_job_count(&cells, scale, &Technique::ALL));
    let sweep = accuracy_sweep(&cells, scale, &Technique::ALL, &Pool::new(workers), &progress);
    let data_cells: Vec<Json> = cells
        .iter()
        .zip(&sweep)
        .map(|(cell, results)| cell_accuracy_json(&cell.label(), &aggregate(results)))
        .collect();
    Json::obj(vec![("cells", Json::Arr(data_cells))]).to_pretty()
}

#[test]
fn parallel_campaign_is_byte_identical_to_serial() {
    let serial = tiny_fig3_data(1);
    let parallel = tiny_fig3_data(4);
    assert!(
        serial == parallel,
        "parallel campaign diverged from serial\n--- serial ---\n{serial}\n--- parallel ---\n{parallel}"
    );
    // Sanity: the data is real, not an empty skeleton.
    let doc = Json::parse(&serial).expect("valid JSON");
    let cells = doc.get("cells").unwrap().as_arr().unwrap();
    assert_eq!(cells.len(), 1);
    let ipc = cells[0].get("ipc_rms").unwrap();
    for t in Technique::ALL {
        let v = ipc.get(t.name()).unwrap().as_f64().unwrap();
        assert!(v.is_finite() && v > 0.0, "{t} must report a positive RMS error, got {v}");
    }
}
