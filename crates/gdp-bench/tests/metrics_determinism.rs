//! Telemetry must observe, never perturb — the observability layer's
//! core guarantee, pinned at campaign granularity.
//!
//! Two properties, each checked for a serial (1-worker) and a parallel
//! (4-worker) pool:
//!
//! 1. **Data is untouched.** A fig3-style tiny sweep run with a metrics
//!    registry attached produces a `data` section byte-identical to the
//!    same sweep with telemetry off.
//! 2. **Counters are scheduling-independent.** The deterministic sink
//!    ([`Snapshot::counters_json`]) is byte-identical across pool sizes:
//!    counters only ever accumulate order-independent sums, so `--jobs N`
//!    must not leak into them. (Gauges, spans and histograms are
//!    *expected* to vary — they live outside the deterministic sink.)

use std::sync::Arc;

use gdp_bench::{
    accuracy_sweep_traced, aggregate, cell_accuracy_json, sweep_job_count, Scale, SweepCell,
};
use gdp_experiments::{CampaignTraces, Technique};
use gdp_runner::{Json, Pool, Progress};
use gdp_telemetry::MetricsRegistry;
use gdp_workloads::LlcClass;

/// One tiny 2-core cell: 8 jobs racing on up to 4 workers, small enough
/// for the debug-build test suite (mirrors `parallel_determinism.rs`).
fn tiny_sweep(workers: usize, metrics: Option<Arc<MetricsRegistry>>) -> String {
    let cells = [SweepCell { cores: 2, class: LlcClass::H }];
    let scale = Scale::Tiny;
    let progress = Progress::silent(sweep_job_count(&cells, scale, &Technique::ALL));
    // A no-IO trace policy (record=false, replay=false) whose only job
    // is to thread the registry into every session — the cache directory
    // is never created or touched.
    let traces = metrics.map(|reg| {
        CampaignTraces::new(std::env::temp_dir().join("gdp-metrics-test-unused"), false, false)
            .with_metrics(reg)
    });
    let sweep = accuracy_sweep_traced(
        &cells,
        scale,
        &Technique::ALL,
        &Pool::new(workers),
        &progress,
        traces.as_ref(),
    );
    let data_cells: Vec<Json> = cells
        .iter()
        .zip(&sweep)
        .map(|(cell, results)| cell_accuracy_json(&cell.label(), &aggregate(results)))
        .collect();
    Json::obj(vec![("cells", Json::Arr(data_cells))]).to_pretty()
}

#[test]
fn metered_campaign_data_is_byte_identical_and_counters_are_jobs_invariant() {
    let plain_1 = tiny_sweep(1, None);

    let reg_1 = MetricsRegistry::shared();
    let metered_1 = tiny_sweep(1, Some(Arc::clone(&reg_1)));
    assert!(
        plain_1 == metered_1,
        "metrics perturbed the serial campaign\n--- off ---\n{plain_1}\n--- on ---\n{metered_1}"
    );

    let reg_4 = MetricsRegistry::shared();
    let metered_4 = tiny_sweep(4, Some(Arc::clone(&reg_4)));
    assert!(
        plain_1 == metered_4,
        "metrics perturbed the parallel campaign\n--- off ---\n{plain_1}\n--- on ---\n{metered_4}"
    );

    // The deterministic sink must not see pool size at all.
    let counters_1 = reg_1.snapshot().counters_json();
    let counters_4 = reg_4.snapshot().counters_json();
    assert!(
        counters_1 == counters_4,
        "counters varied with --jobs\n--- jobs 1 ---\n{counters_1}\n--- jobs 4 ---\n{counters_4}"
    );

    // And it must be real data, not an empty skeleton: the engine and
    // session both fed it.
    let doc = Json::parse(&counters_1).expect("counters sink is valid JSON");
    for key in ["engine.cycles", "session.events", "session.intervals", "session.events.gdp"] {
        let v = doc.get(key).and_then(Json::as_f64).unwrap_or_else(|| panic!("missing {key}"));
        assert!(v > 0.0, "{key} must be non-zero, got {v}");
    }

    // The flight recorder's deterministic `timeseries` group obeys the
    // same contract: interval-indexed bins are order-free sums over
    // session-local indices, so the sink is byte-identical across pool
    // sizes.
    let ts_1 = reg_1.snapshot().timeseries_json();
    let ts_4 = reg_4.snapshot().timeseries_json();
    assert!(
        ts_1 == ts_4,
        "timeseries varied with --jobs\n--- jobs 1 ---\n{ts_1}\n--- jobs 4 ---\n{ts_4}"
    );
    for key in [
        "\"ts.session.events\"",
        "\"ts.session.intervals\"",
        "\"ts.engine.cycles\"",
        "\"ts.engine.cycles_skipped\"",
        "\"ts.llc.accesses\"",
        "\"ts.llc.misses\"",
    ] {
        assert!(ts_1.contains(key), "missing {key} in timeseries sink:\n{ts_1}");
    }
    // Wall-clock series exist but stay out of the deterministic sink.
    assert!(!ts_1.contains("tsw."), "wall series leaked into the deterministic sink:\n{ts_1}");
    let snap = reg_1.snapshot();
    assert!(
        snap.timeseries_wall.iter().any(|(k, _)| k.starts_with("tsw.session.estimate.")),
        "per-technique estimate time-series missing from the wall group"
    );
    // The series carry real samples, not empty rings.
    let (_, events) = snap
        .timeseries
        .iter()
        .find(|(k, _)| k == "ts.session.events")
        .expect("event series present");
    assert!(events.samples > 0 && events.bins.iter().sum::<u64>() > 0);
}
