//! Record-then-replay bit-equality at the campaign level: a fig3
//! `--tiny` cell evaluated from cached traces must serialize to exactly
//! the bytes the live (recording) run produced, for all four transparent
//! techniques, and the warm run must be a pure cache hit.

use gdp_bench::{
    accuracy_sweep_traced, aggregate, cell_accuracy_json, sweep_job_count, Scale, SweepCell,
};
use gdp_experiments::{CampaignTraces, Technique};
use gdp_runner::{Json, Pool, Progress};
use gdp_workloads::LlcClass;

/// Serialize one cell's aggregated accuracy exactly as fig3/fig5 write
/// their `data` sections.
fn data_bytes(sweep: &[Vec<gdp_experiments::WorkloadAccuracy>], cell: &SweepCell) -> String {
    let agg = aggregate(&sweep[0]);
    Json::obj(vec![("cells", Json::Arr(vec![cell_accuracy_json(&cell.label(), &agg)]))]).to_pretty()
}

#[test]
fn fig3_tiny_cell_replays_bit_identically_for_all_transparent_techniques() {
    let dir = std::env::temp_dir().join(format!("gdp-bench-trace-replay-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let cells = [SweepCell { cores: 2, class: LlcClass::H }];
    let transparent = [Technique::ITCA, Technique::PTCA, Technique::GDP, Technique::GDP_O];
    let pool = Pool::new(2);
    let jobs = sweep_job_count(&cells, Scale::Tiny, &transparent);

    // Cold run: simulate and record.
    let rec = CampaignTraces::new(&dir, true, false);
    let cold = accuracy_sweep_traced(
        &cells,
        Scale::Tiny,
        &transparent,
        &pool,
        &Progress::silent(jobs),
        Some(&rec),
    );
    assert!(rec.stats().stores > 0, "cold run must store traces");

    // Warm run: replay everything from the cache.
    let rep = CampaignTraces::new(&dir, false, true);
    let warm = accuracy_sweep_traced(
        &cells,
        Scale::Tiny,
        &transparent,
        &pool,
        &Progress::silent(jobs),
        Some(&rep),
    );
    let s = rep.stats();
    assert_eq!(s.misses, 0, "warm cache must not miss");
    assert_eq!(s.hits as usize, jobs, "every job must be served from the cache");

    // Untraced reference run: the cache must be invisible in the output.
    let live = accuracy_sweep_traced(
        &cells,
        Scale::Tiny,
        &transparent,
        &pool,
        &Progress::silent(jobs),
        None,
    );

    let cold_bytes = data_bytes(&cold, &cells[0]);
    assert_eq!(cold_bytes, data_bytes(&warm, &cells[0]), "record vs replay data section");
    assert_eq!(cold_bytes, data_bytes(&live, &cells[0]), "traced vs untraced data section");

    // Technique-level: every transparent technique produced estimates
    // whose scored errors agree to the bit.
    for (cb, wb) in cold[0].iter().zip(&warm[0]) {
        for (a, b) in cb.benches.iter().zip(&wb.benches) {
            for t in [Technique::ITCA, Technique::PTCA, Technique::GDP, Technique::GDP_O] {
                let i = cold[0][0].tech_index(t).unwrap();
                assert!(!a.ipc_err[i].is_empty(), "{t} must produce errors");
                assert_eq!(
                    a.ipc_err[i].rms_abs().to_bits(),
                    b.ipc_err[i].rms_abs().to_bits(),
                    "{t} IPC errors must replay bit-identically"
                );
                assert_eq!(
                    a.stall_err[i].rms_abs().to_bits(),
                    b.stall_err[i].rms_abs().to_bits(),
                    "{t} stall errors must replay bit-identically"
                );
            }
        }
    }

    let _ = std::fs::remove_dir_all(&dir);
}
