//! LLC management case study (paper §V): run the same 4-core workload
//! under LRU, UCP, ASM-driven partitioning, MCP and MCP-O, and compare
//! system throughput.
//!
//! Run with: `cargo run --release --example cache_partitioning`

use gdp::experiments::{run_policy_study, ExperimentConfig, PolicyKind};
use gdp::workloads::{by_name, Workload};

fn main() {
    let xcfg = ExperimentConfig::quick(4);
    // A workload where partitioning matters: two LLC-sensitive benchmarks
    // next to two cache-polluting streams.
    let workload = Workload {
        name: "demo-HHLL".into(),
        class: None,
        benchmarks: vec![
            by_name("art").unwrap(),
            by_name("galgel").unwrap(),
            by_name("swim").unwrap(),
            by_name("milc").unwrap(),
        ],
    };
    println!("workload: {:?}", workload.names());
    println!("running 5 policies (plus per-benchmark private-mode references)...\n");

    let outcomes = run_policy_study(&workload, &xcfg, &PolicyKind::ALL);
    let lru = outcomes[0].stp;
    println!("{:>8} {:>8} {:>10} {:>12}", "policy", "STP", "vs LRU", "cycles");
    for o in &outcomes {
        println!(
            "{:>8} {:>8.3} {:>9.1}% {:>12}",
            o.policy.name(),
            o.stp,
            100.0 * (o.stp / lru - 1.0),
            o.cycles
        );
    }
    println!(
        "\nSTP sums each core's private/shared CPI ratio (max = 4). MCP and MCP-O \
         use GDP/GDP-O's private-mode estimates to allocate ways by *throughput* \
         rather than by miss counts (paper Fig. 6)."
    );
}
