//! Quickstart: embed GDP as a *streaming* estimation session.
//!
//! Build a 4-core CMP, attach the GDP-O accounting hardware through the
//! technique registry, and consume per-interval private-mode (i.e.
//! interference-free) performance estimates online — the way a host
//! scheduler or QoS controller would, polling between its own events
//! instead of waiting for a batch run to finish.
//!
//! Run with: `cargo run --release --example quickstart`

use gdp::prelude::*;

fn main() {
    // A scaled 4-core CMP (Table I structure, reduced capacities) and the
    // first generated H-category workload.
    let xcfg = ExperimentConfig::quick(4);
    let workload = &paper_workloads(4, 42)[0];
    println!("CMP: {} cores, LLC {} KB", xcfg.sim.cores, xcfg.sim.llc.size_bytes >> 10);
    println!("workload: {:?}", workload.names());

    // Techniques are registry entries: list what could be attached, then
    // attach GDP-O by id.
    println!("registered techniques:");
    for desc in registry().iter() {
        let kind = if desc.caps.invasive { "invasive" } else { "transparent" };
        println!("  {:6} {:6} [{kind}] {}", desc.id, desc.label, desc.summary);
    }
    let gdp_o = Technique::from_id("gdp-o").expect("registered");

    // The streaming session: owns the simulated system, the technique's
    // hardware and the accounting-interval schedule.
    let mut session = SessionBuilder::new(workload, &xcfg).techniques(&[gdp_o]).build();

    println!(
        "\n{:>10} {:>6} {:>10} {:>10} {:>8} {:>8} {:>8}",
        "instrs", "core", "bench", "sharedIPC", "est.IPC", "CPL", "lambda"
    );
    // Drive the session in fixed-size chunks — a host would use its own
    // cadence — and poll the estimates produced so far. Print one core's
    // row per polled interval to keep the tour short.
    let chunk = 4 * xcfg.interval_cycles;
    let mut rows = 0usize;
    while !session.done() {
        session.advance_to(session.now() + chunk);
        for row in session.poll_estimates() {
            rows += 1;
            let core = rows % xcfg.sim.cores; // rotate through the cores
            let iv = &row[core];
            let est = &iv.estimates[0];
            println!(
                "{:>10} {:>6} {:>10} {:>10.3} {:>8.3} {:>8} {:>8.0}",
                iv.instr_end, // the core's committed-instruction checkpoint
                core,
                workload.names()[core],
                iv.stats.ipc(),
                est.ipc(),
                est.cpl,
                iv.lambda
            );
        }
    }

    // The same session yields the classic batch report at the end.
    let report = session.into_report();
    println!("\nfinal shared-mode vs estimated private-mode IPC after {} cycles:", report.cycles);
    for (c, bench) in workload.names().iter().enumerate() {
        let last = report.intervals.last().expect("at least one interval");
        println!(
            "  core {c} ({bench:>8}): shared {:.3}, estimated private {:.3}",
            report.final_stats[c].ipc(),
            last[c].estimates[0].ipc()
        );
    }
    println!(
        "\nEach row is one accounting interval: `est.IPC` is GDP-O's estimate of \
         how fast the benchmark would run with the memory system to itself \
         (interference-free), computed from the dataflow graph's critical path \
         length (CPL) and DIEF's private-latency estimate (lambda)."
    );
}
