//! Quickstart: build a 4-core CMP, run a multiprogrammed workload in
//! shared mode with GDP-O attached, and print per-interval private-mode
//! performance estimates next to the measured shared-mode values.
//!
//! Run with: `cargo run --release --example quickstart`

use gdp::experiments::{run_shared, ExperimentConfig, Technique};
use gdp::workloads::paper_workloads;

fn main() {
    // A scaled 4-core CMP (Table I structure, reduced capacities) and the
    // first generated H-category workload.
    let xcfg = ExperimentConfig::quick(4);
    let workload = &paper_workloads(4, 42)[0];
    println!("CMP: {} cores, LLC {} KB", xcfg.sim.cores, xcfg.sim.llc.size_bytes >> 10);
    println!("workload: {:?}\n", workload.names());

    // One shared-mode run with the GDP-O accounting hardware observing.
    let run = run_shared(workload, &xcfg, &[Technique::GdpO]);

    println!(
        "{:>8} {:>10} {:>10} {:>8} {:>8} {:>8}",
        "core", "bench", "sharedIPC", "est.IPC", "CPL", "lambda"
    );
    // Show the last few intervals of each core.
    for (c, bench) in workload.names().iter().enumerate() {
        for row in run.intervals.iter().rev().take(3).rev() {
            let iv = &row[c];
            let est = &iv.estimates[0];
            println!(
                "{:>8} {:>10} {:>10.3} {:>8.3} {:>8} {:>8.0}",
                c,
                bench,
                iv.stats.ipc(),
                est.ipc(),
                est.cpl,
                iv.lambda
            );
        }
    }
    println!(
        "\nEach row is one accounting interval: `est.IPC` is GDP-O's estimate of \
         how fast the benchmark would run with the memory system to itself \
         (interference-free), computed from the dataflow graph's critical path \
         length (CPL) and DIEF's private-latency estimate (lambda)."
    );
}
