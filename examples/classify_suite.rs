//! Profile the full 52-benchmark suite against LLC way count and print
//! each benchmark's measured speed-up and H/M/L class (paper §VI).
//!
//! Usage: `cargo run --release --example classify_suite [instructions]`
use gdp::sim::SimConfig;
use gdp::workloads::{profile_speedup, suite};

fn main() {
    let cfg = SimConfig::scaled(4);
    let instrs: u64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(40_000);
    let mut mismatches = 0;
    for b in suite() {
        let r = profile_speedup(&b, &cfg, instrs);
        let ok = r.class == b.class;
        if !ok {
            mismatches += 1;
        }
        println!(
            "{:12} intended={} measured={} speedup={:.3} {}",
            b.name,
            b.class,
            r.class,
            r.speedup,
            if ok { "" } else { "  <-- MISMATCH" }
        );
    }
    println!("mismatches: {mismatches}/52");
}
