//! The paper's Figure 1 worked example, replayed through the real GDP
//! hardware model.
//!
//! Five loads (L1..L5) and five commit periods (C1..C5): L1–L3 issue in
//! parallel during C1; L4 and L5 issue during C3. The dataflow graph has
//! two loads on its critical path (CPL = 2). With the example's private
//! latency of 140 cycles and average overlap of 38 cycles, GDP estimates
//! CPI 2.5 and GDP-O the exact 2.1 (paper §IV-A).
//!
//! Run with: `cargo run --release --example figure1_dataflow`

use gdp::core::model::{IntervalMeasurement, PrivateModeEstimator};
use gdp::core::{GdpEstimator, GdpVariant};
use gdp::sim::mem::Interference;
use gdp::sim::probe::{ProbeEvent, StallCause};
use gdp::sim::stats::CoreStats;
use gdp::sim::types::{Addr, CoreId, Cycle, ReqId};

fn miss(addr: Addr, cycle: Cycle) -> ProbeEvent {
    ProbeEvent::LoadL1Miss { core: CoreId(0), req: ReqId(addr), block: addr, cycle }
}

fn done(addr: Addr, cycle: Cycle) -> ProbeEvent {
    ProbeEvent::LoadL1MissDone {
        core: CoreId(0),
        req: ReqId(addr),
        block: addr,
        cycle,
        sms: true,
        latency: 180,
        interference: Interference::default(),
        llc_hit: Some(true),
        post_llc: 0,
    }
}

fn stall(start: Cycle, end: Cycle, blocking: Addr) -> ProbeEvent {
    ProbeEvent::Stall {
        core: CoreId(0),
        start,
        end,
        cause: StallCause::Load,
        blocking_block: Some(blocking),
        blocking_req: Some(ReqId(blocking)),
        blocking_sms: Some(true),
        blocking_interference: None,
    }
}

fn main() {
    // The Figure 1a shared-mode trace.
    let events = vec![
        miss(0xa1, 10),
        miss(0xa2, 12),
        miss(0xa3, 14),
        done(0xa1, 150),
        stall(50, 155, 0xa1), // commit stalls on L1, resumes at 155 (C2)
        done(0xa2, 182),
        stall(175, 185, 0xa2), // stall 2, resumes into C3
        miss(0xa4, 190),
        miss(0xa5, 191),
        done(0xa3, 192),
        done(0xa4, 340),
        stall(200, 350, 0xa4),
        done(0xa5, 356),
        stall(352, 358, 0xa5),
    ];

    // Figure 1a's key data: 190 instructions, 190 commit cycles, 305
    // shared stall cycles, 5 SMS-loads, private latency 140, overlap 38.
    let stats = CoreStats {
        committed_instrs: 190,
        commit_cycles: 190,
        cycles: 495,
        stall_sms: 305,
        sms_loads: 5,
        ..Default::default()
    };
    let m = IntervalMeasurement { stats, lambda: 140.0, shared_latency: 180.0 };

    for variant in [GdpVariant::Gdp, GdpVariant::GdpO] {
        let mut est = GdpEstimator::new(variant, 1, 32);
        for e in &events {
            est.observe(e);
        }
        let name = est.name();
        let out = est.estimate(CoreId(0), &m);
        println!("--- {name} ---");
        println!("critical path length (CPL)      : {}", out.cpl);
        if variant == GdpVariant::GdpO {
            println!("average overlap (O)             : {:.0} cycles", out.overlap);
        }
        println!("estimated private SMS stalls σ̂  : {:.0} cycles", out.sigma_sms);
        println!("estimated private CPI π̂         : {:.2}", out.cpi);
        println!();
    }
    println!("Paper values: CPL = 2; GDP σ̂ = 280 → CPI 2.5; GDP-O σ̂ = 204 → CPI 2.1");
    println!("(the actual private CPI of the example is 2.1 — GDP-O is exact here)");
}
