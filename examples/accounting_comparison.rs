//! Accuracy comparison of all five accounting techniques on one workload
//! (a single cell of the paper's Fig. 3 evaluation).
//!
//! Run with: `cargo run --release --example accounting_comparison`

use gdp::experiments::{evaluate_workload, ExperimentConfig, Technique};
use gdp::workloads::paper_workloads;

fn main() {
    let xcfg = ExperimentConfig::quick(4);
    let workload = &paper_workloads(4, 42)[0];
    println!("workload: {:?}", workload.names());
    println!("evaluating ITCA, PTCA, ASM, GDP and GDP-O against private-mode runs...\n");

    let r = evaluate_workload(workload, &xcfg);

    println!("absolute RMS error of IPC estimates (lower is better):");
    print!("{:>12}", "benchmark");
    for t in Technique::ALL {
        print!(" {:>8}", t.name());
    }
    println!();
    for b in &r.benches {
        print!("{:>12}", b.bench);
        for i in 0..Technique::ALL.len() {
            print!(" {:>8.4}", b.ipc_err[i].rms_abs());
        }
        println!();
    }

    println!("\nabsolute RMS error of SMS-stall estimates (cycles):");
    print!("{:>12}", "benchmark");
    for t in Technique::ALL {
        print!(" {:>8}", t.name());
    }
    println!();
    for b in &r.benches {
        print!("{:>12}", b.bench);
        for i in 0..Technique::ALL.len() {
            print!(" {:>8.0}", b.stall_err[i].rms_abs());
        }
        println!();
    }

    println!("\nASM's invasive priority rotation slowed cores by:");
    for (c, s) in r.invasive_slowdown.iter().enumerate() {
        println!("  core {c}: {:+.1}%", (s - 1.0) * 100.0);
    }
    println!(
        "\n(The paper observed up to 57% slowdown from invasive accounting — the \
         transparent techniques, including GDP, cost nothing.)"
    );
}
