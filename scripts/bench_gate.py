#!/usr/bin/env python3
"""Perf-regression gate over the committed BENCH baselines.

Compares a fresh ``--metrics-out`` snapshot (and optionally a criterion
bench log) against the committed ``BENCH_gate.json`` baseline:

* **strict** — deterministic work counters (session events/intervals,
  engine cycles and skip counts, cache hits/misses/stores, pool jobs)
  must match the baseline *exactly*. These are simulated-work sums,
  byte-identical for every ``--jobs N`` and every machine, so any drift
  means the estimation stack changed behaviour. Drift always fails
  (exit 1), even under ``--advisory``.
* **advisory** — wall-clock span totals and criterion medians are
  machine-dependent; deltas beyond the threshold (default: the
  baseline's ``wall_threshold_pct``) are reported. Under ``--advisory``
  they only warn; without it a wall regression beyond threshold fails.

``--append`` records the fresh measurements as a new entry in the
baseline's ``trajectory`` list and rewrites the baseline file, keeping
the committed perf history growing alongside BENCH_sim.json /
BENCH_session.json.

Usage:
  python3 scripts/bench_gate.py --metrics results/gate.metrics.json \
      --baseline BENCH_gate.json [--criterion-log criterion.log] \
      [--advisory] [--append] [--label "PR 9"] [--wall-threshold 30]

Exit status: 0 = pass (possibly with warnings), 1 = regression,
2 = bad invocation / unreadable input.
"""

import argparse
import datetime
import json
import re
import sys

# `{id:<44} median {:>12} mean {:>12} ({n} samples)` from the vendored
# criterion stub, with values like "3.22 ms" / "812.4 µs".
CRITERION_LINE = re.compile(
    r"^(?P<id>\S+)\s+median\s+(?P<val>[0-9.]+)\s*(?P<unit>ns|µs|us|ms|s)\b"
)
UNIT_MS = {"ns": 1e-6, "µs": 1e-3, "us": 1e-3, "ms": 1.0, "s": 1e3}


def parse_criterion_log(path):
    """Scenario id -> median in milliseconds."""
    medians = {}
    with open(path, encoding="utf-8") as f:
        for line in f:
            m = CRITERION_LINE.match(line.strip())
            if m:
                medians[m.group("id")] = float(m.group("val")) * UNIT_MS[m.group("unit")]
    return medians


def check_strict(baseline_counters, counters):
    """Exact-match every baseline counter; return a list of drift lines."""
    drifts = []
    for key in sorted(baseline_counters):
        want = baseline_counters[key]
        got = counters.get(key)
        if got is None:
            drifts.append(f"counter `{key}` missing (baseline {want})")
        elif got != want:
            drifts.append(f"counter `{key}` drifted: baseline {want}, got {got}")
    return drifts


def check_wall(reference, measured, threshold_pct, kind):
    """Relative-delta check; returns (regressions, notes) line lists."""
    regressions, notes = [], []
    for key in sorted(reference):
        want = reference[key]
        got = measured.get(key)
        if got is None:
            notes.append(f"{kind} `{key}` not measured this run (baseline {want:g})")
            continue
        if want <= 0:
            continue
        delta_pct = 100.0 * (got - want) / want
        line = f"{kind} `{key}`: baseline {want:g}, got {got:g} ({delta_pct:+.1f}%)"
        if delta_pct > threshold_pct:
            regressions.append(line)
        elif delta_pct < -threshold_pct:
            notes.append(line + " — faster; consider refreshing the baseline")
        else:
            notes.append(line)
    return regressions, notes


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--metrics", required=True, help="fresh --metrics-out snapshot")
    ap.add_argument("--baseline", required=True, help="committed BENCH_gate.json")
    ap.add_argument("--criterion-log", help="captured `cargo bench` stdout")
    ap.add_argument(
        "--advisory",
        action="store_true",
        help="wall-time regressions warn instead of failing (counters still strict)",
    )
    ap.add_argument("--append", action="store_true", help="append a trajectory entry")
    ap.add_argument("--label", default="", help="trajectory entry label")
    ap.add_argument(
        "--wall-threshold",
        type=float,
        default=None,
        help="wall-time delta threshold in percent (default: baseline wall_threshold_pct)",
    )
    args = ap.parse_args()

    try:
        with open(args.baseline, encoding="utf-8") as f:
            baseline = json.load(f)
        with open(args.metrics, encoding="utf-8") as f:
            metrics = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"bench_gate: cannot read inputs: {e}", file=sys.stderr)
        return 2

    counters = metrics.get("counters", {})
    spans = {k: v.get("total_secs", 0.0) for k, v in metrics.get("spans", {}).items()}
    threshold = (
        args.wall_threshold
        if args.wall_threshold is not None
        else float(baseline.get("wall_threshold_pct", 25.0))
    )
    advisory = baseline.get("advisory", {})

    # --- strict: deterministic work counters -------------------------
    drifts = check_strict(baseline.get("strict_counters", {}), counters)
    for line in drifts:
        print(f"FAIL  {line}")
    extra = sorted(set(counters) - set(baseline.get("strict_counters", {})))
    if extra:
        print(f"NOTE  counters not in baseline (new instrumentation?): {', '.join(extra)}")
    if not drifts:
        n = len(baseline.get("strict_counters", {}))
        print(f"PASS  {n} deterministic counters match the baseline exactly")

    # --- advisory: wall-clock spans and criterion medians ------------
    wall_regressions, wall_notes = check_wall(
        advisory.get("spans", {}), spans, threshold, "span"
    )
    crit_measured = {}
    if args.criterion_log:
        try:
            crit_measured = parse_criterion_log(args.criterion_log)
        except OSError as e:
            print(f"bench_gate: cannot read criterion log: {e}", file=sys.stderr)
            return 2
        regs, notes = check_wall(
            advisory.get("criterion", {}), crit_measured, threshold, "bench"
        )
        wall_regressions += regs
        wall_notes += notes
    for line in wall_notes:
        print(f"OK    {line}")
    tag = "WARN" if args.advisory else "FAIL"
    for line in wall_regressions:
        print(f"{tag}  {line} > {threshold:g}% threshold")

    # --- trajectory --------------------------------------------------
    if args.append:
        entry = {
            "label": args.label or "unlabeled",
            "date": datetime.date.today().isoformat(),
            "spans_total_secs": {k: spans[k] for k in sorted(advisory.get("spans", {})) if k in spans},
            "criterion_median_ms": {k: crit_measured[k] for k in sorted(crit_measured)},
            "counters_ok": not drifts,
        }
        baseline.setdefault("trajectory", []).append(entry)
        with open(args.baseline, "w", encoding="utf-8") as f:
            json.dump(baseline, f, indent=2)
            f.write("\n")
        print(f"NOTE  appended trajectory entry `{entry['label']}` to {args.baseline}")

    if drifts:
        print(f"bench_gate: FAIL — {len(drifts)} deterministic counter(s) drifted")
        return 1
    if wall_regressions and not args.advisory:
        print(f"bench_gate: FAIL — {len(wall_regressions)} wall-time regression(s)")
        return 1
    if wall_regressions:
        print(f"bench_gate: PASS with {len(wall_regressions)} advisory warning(s)")
    else:
        print("bench_gate: PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
