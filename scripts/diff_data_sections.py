#!/usr/bin/env python3
"""Byte-compare the deterministic `data` sections of two results files.

The campaign results pretty-printer has a fixed layout, so the raw text
between the `"data":` key and the trailing `"run":` key is exactly the
deterministic portion of `results/<figure>.json`. All CI byte-compare
jobs (trace replay vs live, step engine vs event engine, technique
subset vs full set) share this one parser so the slicing rule cannot
drift between them.

Usage: diff_data_sections.py [--common] A.json B.json [label]

Default mode compares the raw data-section text byte-for-byte. With
`--common`, both data sections are parsed as JSON and only their
*common-key projection* is compared: object keys present in both
documents must carry byte-identical values, extra keys (e.g. the columns
an extra `--techniques` selection adds) are reported and ignored. That
is the "matching data rows" check for default-set vs full-set runs.

Exits non-zero when the compared content differs.
"""

import json
import sys


def data_section(path: str) -> str:
    text = open(path).read()
    start = text.index('"data":')
    end = text.rindex('"run":')
    return text[start:end]


def data_json(path: str):
    return json.load(open(path))["data"]


def project_common(a, b, dropped, prefix):
    """The part of `a` whose keys/positions also exist in `b`."""
    if isinstance(a, dict) and isinstance(b, dict):
        out = {}
        for k, v in a.items():
            if k in b:
                out[k] = project_common(v, b[k], dropped, f"{prefix}.{k}")
            else:
                dropped.append(f"{prefix}.{k}")
        return out
    if isinstance(a, list) and isinstance(b, list):
        n = min(len(a), len(b))
        if len(a) != n:
            dropped.append(f"{prefix}[{n}:{len(a)}]")
        return [
            project_common(x, y, dropped, f"{prefix}[{i}]")
            for i, (x, y) in enumerate(zip(a, b))
        ]
    return a


def dumps(v) -> str:
    # Insertion order is the documents' own deterministic order; float
    # repr round-trips exact f64 values, so equal text == equal bits.
    return json.dumps(v, indent=1)


def main() -> int:
    args = sys.argv[1:]
    common = args and args[0] == "--common"
    if common:
        args = args[1:]
    a, b = args[0], args[1]
    label = args[2] if len(args) > 2 else f"{a} vs {b}"

    if common:
        da, db = data_json(a), data_json(b)
        dropped_a, dropped_b = [], []
        pa = dumps(project_common(da, db, dropped_a, "data"))
        pb = dumps(project_common(db, da, dropped_b, "data"))
        for side, dropped in ((a, dropped_a), (b, dropped_b)):
            if dropped:
                head = ", ".join(dropped[:4]) + ("..." if len(dropped) > 4 else "")
                print(f"note: {len(dropped)} key(s) only in {side}, ignored: {head}")
        if pa != pb:
            print(f"common data rows differ: {label}", file=sys.stderr)
            return 1
        print(f"common data rows byte-identical ({len(pa)} bytes compared): {label}")
        return 0

    sa, sb = data_section(a), data_section(b)
    if sa != sb:
        print(f"data sections differ: {label}", file=sys.stderr)
        return 1
    print(f"data sections byte-identical ({len(sa)} bytes): {label}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
