#!/usr/bin/env python3
"""Byte-compare the deterministic `data` sections of two results files.

The campaign results pretty-printer has a fixed layout, so the raw text
between the `"data":` key and the trailing `"run":` key is exactly the
deterministic portion of `results/<figure>.json`. Both CI byte-compare
jobs (trace replay vs live, step engine vs event engine) share this one
parser so the slicing rule cannot drift between them.

Usage: diff_data_sections.py A.json B.json [label]
Exits non-zero when the sections differ.
"""

import sys


def data_section(path: str) -> str:
    text = open(path).read()
    start = text.index('"data":')
    end = text.rindex('"run":')
    return text[start:end]


def main() -> int:
    a, b = sys.argv[1], sys.argv[2]
    label = sys.argv[3] if len(sys.argv) > 3 else f"{a} vs {b}"
    sa, sb = data_section(a), data_section(b)
    if sa != sb:
        print(f"data sections differ: {label}", file=sys.stderr)
        return 1
    print(f"data sections byte-identical ({len(sa)} bytes): {label}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
